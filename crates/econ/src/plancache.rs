//! Memoized planning — the per-template plan cache.
//!
//! The economy's control loop runs full plan enumeration (`P_Q`, skyline,
//! case analysis) for **every** arriving query, and the fleet layer
//! multiplies that by the node count because cheapest-quote routing plans
//! the query once per bidding node. Most of that work is redundant: the
//! seven paper templates arrive Zipf-skewed, and between cache-state
//! changes the enumerated plan set for a given query instance is a pure
//! function of
//!
//! * the query's planning fingerprint (accesses, columns, selectivities,
//!   result size — everything the cost model reads),
//! * the cache planning epoch ([`cache::CacheState::epoch`] — changes on
//!   install, evict and in-flight-build availability transitions),
//! * the structural policy switches (`allow_indexes`,
//!   `allow_extra_nodes`).
//!
//! A [`PlanCache`] entry stores the enumerated (pre-skyline) plan set
//! under that key. Components that drift with state the epoch does not
//! cover are *recomputed* on every reuse rather than trusted:
//!
//! * **maintenance** accrues continuously with the clock and is capped
//!   at the arrival-rate-derived window, so a hit recomputes each plan's
//!   maintenance quote (O(uses) map lookups — far cheaper than
//!   enumeration);
//! * **amortisation dues** of existing structures shrink as installments
//!   are collected; the settlement counter
//!   ([`cache::CacheState::settle_seq`]) tells the cache when dues moved;
//! * **first installments** of missing structures depend on the adaptive
//!   horizon `n`, which moves with the observed arrival rate — the slot
//!   stores each plan's epoch-stable missing-build quotes and re-divides
//!   them under the current horizon, so the memo keeps firing under
//!   Poisson and fleet arrivals where the rate changes every query.
//!
//! The contract — enforced by `tests/memoization.rs` and the fleet
//! routing tests — is that memoized results are **bit-identical** to
//! fresh enumeration: same plans, same order, same prices, and therefore
//! the same selections, payments, regrets and investments. Determinism
//! and shard-invariance of the fleet depend on it.

use cache::CacheState;
use planner::enumerate::EnumerationOptions;
use planner::QueryPlan;
use pricing::Money;
use simcore::SimTime;
use workload::Query;

/// One memoized template slot.
///
/// The match key is deliberately minimal: the epoch, the fingerprint and
/// the *structural* policy switches (`allow_indexes`,
/// `allow_extra_nodes`). The arrival-rate-derived options — amortisation
/// horizon and maintenance window — move with the observed arrival
/// statistics on almost every query under non-uniform arrivals, so
/// keying on them would make the memo inert exactly where it matters
/// (Poisson tenants, fleet quote rounds). Instead the price components
/// they parameterise are re-derived on reuse from the stored
/// epoch-stable build quotes and the live ledger.
#[derive(Debug)]
pub(crate) struct Slot {
    /// Cache planning epoch the plans were enumerated under.
    pub epoch: u64,
    /// Settlement counter at the last price refresh.
    pub settle_seq: u64,
    /// Enumeration options the plans were last *priced* under (the
    /// structural switches within are part of the match key; the horizon
    /// and window record what the current prices reflect).
    pub opts: EnumerationOptions,
    /// Full planning fingerprint of the query instance (collision-proof:
    /// compared in full, not hashed).
    pub fingerprint: Vec<u64>,
    /// Instant of the last price refresh.
    pub now: SimTime,
    /// The enumerated plan set, in enumeration order (backend first).
    pub plans: Vec<QueryPlan>,
    /// Per-plan build quotes of the *missing* structures, parallel to
    /// each plan's `missing` list. Epoch-stable; refreshes re-derive the
    /// first-installment amortisation from them under the current
    /// horizon.
    pub missing_builds: Vec<Vec<Money>>,
}

/// Hit/miss counters (exposed through the policies layer and the
/// `hotpath` bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from a memoized plan set.
    pub hits: u64,
    /// Lookups that had to enumerate.
    pub misses: u64,
    /// Hits that needed a maintenance/amortisation price refresh (the
    /// clock or the settlement counter had moved).
    pub refreshes: u64,
}

/// Per-manager memoized plan sets, one slot per query template.
#[derive(Debug, Default)]
pub struct PlanCache {
    slots: Vec<Option<Slot>>,
    stats: PlanCacheStats,
    fingerprint_scratch: Vec<u64>,
}

impl PlanCache {
    /// Empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// Builds the planning fingerprint of `query` into the internal
    /// scratch. Covers exactly the fields enumeration reads;
    /// `budget_scale` (budget only), `id` and `region` (unread) are
    /// deliberately excluded.
    pub(crate) fn prepare_fingerprint(&mut self, query: &Query) {
        let fp = &mut self.fingerprint_scratch;
        fp.clear();
        fp.push(query.accesses.len() as u64);
        for a in &query.accesses {
            fp.push(u64::from(a.table.0));
            fp.push(a.columns.len() as u64);
            fp.extend(a.columns.iter().map(|c| u64::from(c.0)));
            fp.push(a.predicate_columns.len() as u64);
            fp.extend(a.predicate_columns.iter().map(|c| u64::from(c.0)));
            fp.push(a.selectivity.to_bits());
        }
        fp.push(query.sort_columns.len() as u64);
        fp.extend(query.sort_columns.iter().map(|c| u64::from(c.0)));
        fp.push(query.result_rows);
        fp.push(query.result_bytes);
    }

    /// The memoized slot for `template`, if it matches the prepared
    /// fingerprint under `epoch` and `opts`.
    pub(crate) fn matching_slot(
        &mut self,
        template: usize,
        epoch: u64,
        opts: &EnumerationOptions,
    ) -> Option<&mut Slot> {
        let fp = &self.fingerprint_scratch;
        match self.slots.get_mut(template) {
            Some(Some(slot)) if slot.matches(epoch, opts, fp) => Some(slot),
            _ => None,
        }
    }

    /// Memoizes a freshly enumerated plan set for `template` under the
    /// prepared fingerprint, returning the displaced slot's plans (if
    /// any) so the caller can recycle their allocations.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn install_slot(
        &mut self,
        template: usize,
        epoch: u64,
        settle_seq: u64,
        opts: EnumerationOptions,
        now: SimTime,
        plans: Vec<QueryPlan>,
        missing_builds: Vec<Vec<Money>>,
    ) -> Option<(Vec<QueryPlan>, Vec<Vec<Money>>)> {
        if template >= self.slots.len() {
            self.slots.resize_with(template + 1, || None);
        }
        let (mut fingerprint, displaced) = match self.slots[template].take() {
            Some(old) => (old.fingerprint, Some((old.plans, old.missing_builds))),
            None => (Vec::new(), None),
        };
        fingerprint.clear();
        fingerprint.extend_from_slice(&self.fingerprint_scratch);
        self.slots[template] = Some(Slot {
            epoch,
            settle_seq,
            opts,
            fingerprint,
            now,
            plans,
            missing_builds,
        });
        displaced
    }

    /// Records a hit (optionally after a refresh) or a miss.
    pub(crate) fn count(&mut self, hit: bool, refreshed: bool) {
        if hit {
            self.stats.hits += 1;
            if refreshed {
                self.stats.refreshes += 1;
            }
        } else {
            self.stats.misses += 1;
        }
    }
}

impl Slot {
    /// True if this slot's plans are structurally reusable for the given
    /// key: same epoch, same query fingerprint, same plan-family
    /// switches. The horizon/window halves of `opts` are *not* compared —
    /// they only scale prices, which [`Self::refresh_prices`] re-derives.
    pub fn matches(&self, epoch: u64, opts: &EnumerationOptions, fingerprint: &[u64]) -> bool {
        self.epoch == epoch
            && self.opts.allow_indexes == opts.allow_indexes
            && self.opts.allow_extra_nodes == opts.allow_extra_nodes
            && self.fingerprint == fingerprint
    }

    /// True if the prices quoted at the last refresh are still exact: the
    /// clock has not moved (maintenance spans unchanged), no settlement
    /// has collected installments or moved checkpoints since, and the
    /// arrival-rate-derived options are unchanged.
    pub fn prices_current(
        &self,
        cache: &CacheState,
        now: SimTime,
        opts: &EnumerationOptions,
    ) -> bool {
        self.now == now
            && self.settle_seq == cache.settle_seq()
            && self.opts.amortize_n == opts.amortize_n
            && self.opts.maint_window == opts.maint_window
    }

    /// Re-quotes every plan's amortisation (first installments of missing
    /// structures under the current horizon, live dues of existing ones)
    /// and maintenance (live checkpoints capped at the current window)
    /// at `now`, mirroring the enumerator's quoting loops exactly (same
    /// structures, same order of rounding) so refreshed prices are
    /// bit-identical to fresh enumeration under the same epoch.
    pub fn refresh_prices<F>(
        &mut self,
        cache: &CacheState,
        now: SimTime,
        opts: EnumerationOptions,
        price: F,
    ) where
        F: Fn(&cache::CachedStructure, simcore::SimDuration) -> Money,
    {
        debug_assert!(opts.amortize_n > 0, "amortization horizon must be positive");
        for (plan, builds) in self.plans.iter_mut().zip(&self.missing_builds) {
            let mut amortized = Money::ZERO;
            for &build in builds {
                amortized += build.amortize_over(opts.amortize_n);
            }
            let mut maintenance = Money::ZERO;
            for &key in &plan.uses {
                if let Some(s) = cache.get(key) {
                    if s.is_available(now) {
                        amortized += s.amortization_due();
                        let span = now
                            .saturating_since(s.maint_paid_until)
                            .min(opts.maint_window);
                        maintenance += price(s, span);
                    }
                }
            }
            plan.amortized_cost = amortized;
            plan.maintenance_cost = maintenance;
            plan.price = plan.exec_cost + plan.amortized_cost + plan.maintenance_cost;
        }
        self.now = now;
        self.settle_seq = cache.settle_seq();
        self.opts = opts;
    }
}
