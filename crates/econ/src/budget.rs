//! User budget functions `B_Q(t)` (Section IV-C, Fig. 1).
//!
//! The user submits, with each query, the price she is willing to pay as a
//! function of the delivered execution time. The paper requires only that
//! the function is non-increasing on `(0, t_max]`; Fig. 1 sketches the
//! three canonical shapes (step, convex, concave), and the experiments use
//! the step shape ("The user defines a step preference function B_Q").

use pricing::Money;
use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// Which of the canonical shapes to generate for users (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetShape {
    /// Fig. 1(a): flat `|a|` until `t_max`, then zero.
    Step,
    /// Fig. 1(b): linear decay `|a| · (1 − t/t_max)` (the convex bound).
    Convex,
    /// Fig. 1(c): concave decay `|a| · (1 − (t/t_max)²)` — stays near the
    /// full amount for fast answers, collapses near the deadline.
    Concave,
}

/// A concrete budget function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BudgetFunction {
    /// Flat amount until the deadline.
    Step {
        /// Willingness to pay for any time within the deadline.
        amount: Money,
        /// Deadline `t_max`.
        t_max: SimDuration,
    },
    /// Linearly decaying amount.
    Convex {
        /// Willingness to pay at `t = 0`.
        amount: Money,
        /// Deadline.
        t_max: SimDuration,
    },
    /// Concave (quadratic) decay.
    Concave {
        /// Willingness to pay at `t = 0`.
        amount: Money,
        /// Deadline.
        t_max: SimDuration,
    },
    /// Arbitrary tabulated non-increasing function: `(time, amount)` pairs
    /// sorted by time; the value at `t` is the amount of the last point
    /// with `time ≤ t` (piecewise constant), zero beyond the last point.
    Table(Vec<(SimDuration, Money)>),
}

impl BudgetFunction {
    /// Builds the given shape.
    ///
    /// # Panics
    /// Panics if `amount` is negative or `t_max` is zero.
    #[must_use]
    pub fn of_shape(shape: BudgetShape, amount: Money, t_max: SimDuration) -> Self {
        assert!(!amount.is_negative(), "budget amount must be non-negative");
        assert!(!t_max.is_zero(), "budget deadline must be positive");
        match shape {
            BudgetShape::Step => BudgetFunction::Step { amount, t_max },
            BudgetShape::Convex => BudgetFunction::Convex { amount, t_max },
            BudgetShape::Concave => BudgetFunction::Concave { amount, t_max },
        }
    }

    /// Builds a tabulated function.
    ///
    /// # Panics
    /// Panics unless points are sorted by time with non-increasing amounts
    /// (the paper's descending requirement).
    #[must_use]
    pub fn table(points: Vec<(SimDuration, Money)>) -> Self {
        assert!(!points.is_empty(), "table needs at least one point");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "table times must be strictly increasing");
            assert!(w[0].1 >= w[1].1, "budget must be non-increasing");
        }
        BudgetFunction::Table(points)
    }

    /// The deadline beyond which the budget is zero.
    #[must_use]
    pub fn t_max(&self) -> SimDuration {
        match self {
            BudgetFunction::Step { t_max, .. }
            | BudgetFunction::Convex { t_max, .. }
            | BudgetFunction::Concave { t_max, .. } => *t_max,
            BudgetFunction::Table(points) => points.last().expect("non-empty").0,
        }
    }

    /// Evaluates `B_Q(t)`. Zero beyond `t_max`; never negative.
    #[must_use]
    pub fn value_at(&self, t: SimDuration) -> Money {
        match self {
            BudgetFunction::Step { amount, t_max } => {
                if t <= *t_max {
                    *amount
                } else {
                    Money::ZERO
                }
            }
            BudgetFunction::Convex { amount, t_max } => {
                if t <= *t_max {
                    let frac = 1.0 - t.as_secs() / t_max.as_secs();
                    amount.scale(frac.max(0.0))
                } else {
                    Money::ZERO
                }
            }
            BudgetFunction::Concave { amount, t_max } => {
                if t <= *t_max {
                    let x = t.as_secs() / t_max.as_secs();
                    amount.scale((1.0 - x * x).max(0.0))
                } else {
                    Money::ZERO
                }
            }
            BudgetFunction::Table(points) => {
                // Last point with time <= t, else the first point applies
                // from t=0 (paper defines budgets on (0, t_max]).
                let mut value = points[0].1;
                for &(pt, amount) in points {
                    if pt <= t {
                        value = amount;
                    } else {
                        break;
                    }
                }
                if t > self.t_max() {
                    Money::ZERO
                } else {
                    value
                }
            }
        }
    }

    /// True if `price` is within budget at time `t`.
    #[must_use]
    pub fn affords(&self, t: SimDuration, price: Money) -> bool {
        self.value_at(t) >= price
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }
    fn m(x: f64) -> Money {
        Money::from_dollars(x)
    }

    #[test]
    fn step_is_flat_then_zero() {
        let b = BudgetFunction::of_shape(BudgetShape::Step, m(10.0), d(5.0));
        assert_eq!(b.value_at(d(0.0)), m(10.0));
        assert_eq!(b.value_at(d(5.0)), m(10.0));
        assert_eq!(b.value_at(d(5.0001)), Money::ZERO);
        assert_eq!(b.t_max(), d(5.0));
    }

    #[test]
    fn convex_decays_linearly() {
        let b = BudgetFunction::of_shape(BudgetShape::Convex, m(10.0), d(10.0));
        assert_eq!(b.value_at(d(0.0)), m(10.0));
        assert_eq!(b.value_at(d(5.0)), m(5.0));
        assert_eq!(b.value_at(d(10.0)), Money::ZERO);
        assert_eq!(b.value_at(d(11.0)), Money::ZERO);
    }

    #[test]
    fn concave_dominates_convex_inside_deadline() {
        let concave = BudgetFunction::of_shape(BudgetShape::Concave, m(10.0), d(10.0));
        let convex = BudgetFunction::of_shape(BudgetShape::Convex, m(10.0), d(10.0));
        for t in [1.0, 3.0, 5.0, 7.0, 9.0] {
            assert!(
                concave.value_at(d(t)) > convex.value_at(d(t)),
                "concave must stay above the chord at t={t}"
            );
        }
    }

    #[test]
    fn all_shapes_are_non_increasing() {
        for shape in [BudgetShape::Step, BudgetShape::Convex, BudgetShape::Concave] {
            let b = BudgetFunction::of_shape(shape, m(7.0), d(20.0));
            let mut prev = b.value_at(d(0.0));
            for i in 1..=40 {
                let v = b.value_at(d(f64::from(i)));
                assert!(v <= prev, "{shape:?} increased at t={i}");
                prev = v;
            }
        }
    }

    #[test]
    fn table_is_piecewise_constant() {
        let b = BudgetFunction::table(vec![(d(0.0), m(10.0)), (d(2.0), m(6.0)), (d(4.0), m(1.0))]);
        assert_eq!(b.value_at(d(0.0)), m(10.0));
        assert_eq!(b.value_at(d(1.9)), m(10.0));
        assert_eq!(b.value_at(d(2.0)), m(6.0));
        assert_eq!(b.value_at(d(3.9)), m(6.0));
        assert_eq!(b.value_at(d(4.0)), m(1.0));
        assert_eq!(b.value_at(d(4.1)), Money::ZERO);
    }

    #[test]
    fn affords_compares_at_the_plan_time() {
        let b = BudgetFunction::of_shape(BudgetShape::Convex, m(10.0), d(10.0));
        assert!(b.affords(d(2.0), m(8.0)));
        assert!(!b.affords(d(2.1), m(8.0)));
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn increasing_table_rejected() {
        let _ = BudgetFunction::table(vec![(d(0.0), m(1.0)), (d(1.0), m(2.0))]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_table_rejected() {
        let _ = BudgetFunction::table(vec![(d(1.0), m(2.0)), (d(1.0), m(1.0))]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_deadline_rejected() {
        let _ = BudgetFunction::of_shape(BudgetShape::Step, m(1.0), SimDuration::ZERO);
    }
}
