//! Structure-failure policy — footnote 3 of the paper.
//!
//! *"Excessive maintenance cost of a structure due to non-usage of it in
//! selected query plans, can be the reason of structure failure."*
//!
//! A structure accrues maintenance continuously (eqs. 11/13/15); selected
//! plans that use it reimburse the accrual. If nothing uses it, the
//! unreimbursed accrual grows; once it exceeds `fail_factor ×` the
//! structure's build cost, keeping it is a worse deal than having to
//! rebuild it — the economy evicts ("fails") it. This single rule is what
//! drives the 10 s / 60 s eviction behaviour of Section VII-B.

use serde::{Deserialize, Serialize};

/// Failure thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailurePolicy {
    /// A structure fails when its unpaid maintenance exceeds
    /// `fail_factor × build_cost`.
    pub fail_factor: f64,
}

impl Default for FailurePolicy {
    fn default() -> Self {
        // With EC2-2009 prices, `build/maintenance ≈ 20 days` for any
        // column (both scale with size), while assembling a full working
        // set over a 25 Mbps link takes ~1-3 weeks of simulated time at
        // the paper's scale. A factor of 1 makes structures fail in the
        // middle of that assembly race; 3 tolerates the assembly while
        // still evicting structures whose workload genuinely moved away
        // (the paper's 10 s / 60 s eviction behaviour).
        FailurePolicy { fail_factor: 3.0 }
    }
}

impl FailurePolicy {
    /// Validates the factor.
    ///
    /// # Errors
    /// Returns a message if the factor is not positive/finite.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !self.fail_factor.is_finite() || self.fail_factor <= 0.0 {
            return Err("fail_factor must be positive");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_break_even() {
        assert_eq!(FailurePolicy::default().fail_factor, 3.0);
        assert!(FailurePolicy::default().validate().is_ok());
    }

    #[test]
    fn validation_rejects_nonpositive() {
        assert!(FailurePolicy { fail_factor: 0.0 }.validate().is_err());
        assert!(FailurePolicy { fail_factor: -1.0 }.validate().is_err());
        assert!(FailurePolicy {
            fail_factor: f64::NAN
        }
        .validate()
        .is_err());
    }
}
