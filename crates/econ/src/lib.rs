//! # econ — the paper's economic model (the primary contribution)
//!
//! This crate implements Section IV of *"An Economic Model for Self-Tuned
//! Cloud Caching"* end to end:
//!
//! * [`budget`] — user budget functions `B_Q(t)`: step, convex (linear),
//!   concave and tabulated shapes (Fig. 1), all non-increasing on
//!   `(0, t_max]`.
//! * [`selection`] — the three-way case analysis of Section IV-C
//!   (Fig. 2): Case A (budget below every plan), Case B (budget covers
//!   every plan — pick the plan minimising cloud profit, credit the
//!   profit), Case C (mixed — Case B over the affordable subset), plus the
//!   regret formulas eq. 1 and eq. 2.
//! * [`regret`] — the `regretS` array: rejected-plan regret distributed
//!   uniformly over the plan's structures, LRU-bounded as Section IV-B
//!   prescribes.
//! * [`invest`] — the investment rule eq. 3
//!   (`InvestIn(S) = round(regret_S / (a · CR))`) with the conservative
//!   gate of Section VII-A ("builds structures only when her profit
//!   exceeds the cost of building them").
//! * [`amortize`] — eq. 7 amortisation (`Build/n`) with a fixed horizon or
//!   an arrival-rate-adaptive horizon (the "challenging problem" the paper
//!   defers to future work).
//! * [`account`] — the cloud account: an exactly-balancing ledger of
//!   deposits (query payments) and withdrawals (investments).
//! * [`maintenance`] — structure-failure policy (footnote 3).
//! * [`economy`] — [`economy::EconomyManager`], the per-query control loop
//!   gluing all of the above to the planner and the cache, plus
//!   [`economy::QuoteBatch`], the batched structure-major quote round a
//!   fleet's routers fan out over competing managers.
//! * [`plancache`] — memoized planning: 2-way-associative per-template
//!   slots caching the cache-independent plan skeleton plus its latest
//!   per-node completion, bit-identical to fresh enumeration (the
//!   hot-path optimisation the `hotpath` bench measures), with
//!   way-conflict counters feeding the adaptive-associativity roadmap.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod account;
pub mod amortize;
pub mod budget;
pub mod config;
pub mod economy;
pub mod invest;
pub mod maintenance;
pub mod outcome;
pub mod plancache;
pub mod regret;
pub mod selection;

pub use account::CloudAccount;
pub use amortize::AmortizationPolicy;
pub use budget::{BudgetFunction, BudgetShape};
pub use config::EconConfig;
pub use economy::{EconomyManager, QuoteBatch};
pub use invest::InvestmentRule;
pub use outcome::{QueryOutcome, SelectionCase};
pub use plancache::{PlanCache, PlanCacheStats};
pub use regret::{RegretAttribution, RegretLedger};
pub use selection::{select_plan, select_plan_hot, SelectionObjective};
