//! The economy manager — Section IV's control loop, one query at a time.
//!
//! For each incoming query the manager:
//!
//! 1. accrues disk occupancy and evicts *failed* structures (footnote 3);
//! 2. enumerates `P_Q = P_exist ∪ P_pos` via the planner and reduces it to
//!    the skyline (footnote 2);
//! 3. forms the user's budget function from the backend plan (users
//!    "accept query execution in the back-end", so their willingness is a
//!    multiple of the backend price and their deadline a multiple of the
//!    backend time);
//! 4. runs the case analysis (Section IV-C), charges the user, credits
//!    profit, and settles maintenance + amortisation installments on the
//!    used structures;
//! 5. distributes the rejected-plan regret over structures (eqs. 1–2);
//! 6. applies the investment rule (eq. 3) and builds what it triggers,
//!    paying from the account.

use std::cell::RefCell;
use std::sync::Arc;

use cache::{CacheState, CachedStructure, StructureKey};
use planner::enumerate::EnumerationOptions;
use planner::{
    complete_plans_into, enumerate_plans_into, skyline_partition_hot, BatchCompleter, CacheView,
    Estimator, LazySkeleton, PlanBuffer, PlanHot, PlanSkeleton, PlannerContext, QueryPlan,
};
use pricing::Money;
use simcore::{SimDuration, SimTime};
use workload::Query;

use crate::account::CloudAccount;
use crate::budget::BudgetFunction;
use crate::config::EconConfig;
use crate::outcome::{QueryOutcome, SelectionCase};
use crate::plancache::{PlanCache, PlanCacheStats};
use crate::regret::RegretLedger;
use crate::selection::{select_payment_hot, select_plan_hot};

/// The paper's self-tuned economy, owning the cloud account, the cache
/// state and the regret ledger.
#[derive(Debug)]
pub struct EconomyManager {
    config: EconConfig,
    account: CloudAccount,
    cache: CacheState,
    regret: RegretLedger,
    queries_seen: u64,
    first_arrival: Option<SimTime>,
    last_arrival: SimTime,
    /// Memoized plan sets per template (interior mutability: quotes are
    /// `&self` but warm the cache for the serving call).
    plancache: RefCell<PlanCache>,
    /// Recycled enumeration storage (see [`PlanBuffer`]).
    planbuf: RefCell<PlanBuffer>,
    /// Scratch for the skyline index partition.
    sky_scratch: RefCell<SkyScratch>,
    /// Lower bound (seconds) on the earliest instant any structure can
    /// fail; the per-query failure scan is skipped while `now` is below
    /// it. See [`Self::refresh_failure_bound`].
    next_failure_check: f64,
    /// Set when the fault plane warns this node of an imminent planned
    /// crash: existing structures keep serving and settling, but the
    /// investment scan is skipped — fresh capital could never amortize
    /// before the machine dies, so building would only inflate the
    /// write-off (typically rebuilding the very structures evacuation
    /// just shipped to survivors).
    investment_frozen: bool,
}

#[derive(Debug, Default)]
struct SkyScratch {
    hot: PlanHot,
    order: Vec<usize>,
    sky: Vec<usize>,
}

/// The outcome of planning one query: the case analysis plus the data the
/// control loop needs to settle it, extracted so the memoized plan set is
/// never cloned wholesale.
struct Planned {
    opts: EnumerationOptions,
    case: SelectionCase,
    payment: Money,
    profit: Money,
    chosen: QueryPlan,
    /// `(regret amount, missing structures)` per rejected possible plan.
    regrets: Vec<(Money, Vec<StructureKey>)>,
}

impl EconomyManager {
    /// Creates a manager with an empty cache.
    ///
    /// # Panics
    /// Panics if `config` is invalid.
    #[must_use]
    pub fn new(config: EconConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid economy config: {msg}");
        }
        let account = CloudAccount::new(config.initial_credit);
        let pool = config.regret_pool_capacity;
        EconomyManager {
            config,
            account,
            cache: CacheState::new(),
            regret: RegretLedger::new(pool),
            queries_seen: 0,
            first_arrival: None,
            last_arrival: SimTime::ZERO,
            plancache: RefCell::new(PlanCache::new()),
            planbuf: RefCell::new(PlanBuffer::new()),
            sky_scratch: RefCell::new(SkyScratch::default()),
            next_failure_check: f64::NEG_INFINITY,
            investment_frozen: false,
        }
    }

    /// Stops the investment scan for good: a node warned of a planned
    /// crash serves from the structures it already holds (or the
    /// backend) but commits no new capital — a build started now dies
    /// unamortized at the crash instant.
    pub fn freeze_investment(&mut self) {
        self.investment_frozen = true;
    }

    /// Plan-cache hit/miss counters.
    #[must_use]
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plancache.borrow().stats()
    }

    /// Plan-cache way-conflict evictions per template (indexed by
    /// template id) — the adaptive-associativity input signal.
    #[must_use]
    pub fn plan_cache_way_conflicts(&self) -> Vec<u64> {
        self.plancache.borrow().way_conflicts().to_vec()
    }

    /// The cloud account (`CR` lives here).
    #[must_use]
    pub fn account(&self) -> &CloudAccount {
        &self.account
    }

    /// Mutable account access for the simulator's operating-cost draws.
    pub fn account_mut(&mut self) -> &mut CloudAccount {
        &mut self.account
    }

    /// The cache state.
    #[must_use]
    pub fn cache(&self) -> &CacheState {
        &self.cache
    }

    /// The regret ledger (diagnostics).
    #[must_use]
    pub fn regret(&self) -> &RegretLedger {
        &self.regret
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EconConfig {
        &self.config
    }

    /// Accrues the cache's time-based integrals (disk occupancy) up to
    /// `now` without processing a query — used by the simulator to close
    /// out a run horizon.
    pub fn advance_to(&mut self, now: SimTime) {
        self.cache.advance(now);
    }

    /// Re-bases the disk-occupancy integral at `now`, keeping the cached
    /// structures but writing off the byte-seconds accrued so far.
    ///
    /// Crash-recovery replay drives a fresh manager through the crashed
    /// node's served-query journal at the *original* timestamps; the disk
    /// rent of that span was already settled when the crashed node's
    /// books closed at the crash instant (eq. 13), so the recovered
    /// manager must only accrue rent from its recovery instant forward.
    pub fn rebase_occupancy(&mut self, now: SimTime) {
        self.cache.rebase_occupancy(now);
    }

    /// Observed arrival rate (queries/second); 0 before two arrivals.
    #[must_use]
    pub fn arrival_rate(&self) -> f64 {
        match self.first_arrival {
            Some(first) if self.queries_seen >= 2 => {
                let span = (self.last_arrival - first).as_secs();
                if span > 0.0 {
                    (self.queries_seen - 1) as f64 / span
                } else {
                    0.0
                }
            }
            _ => 0.0,
        }
    }

    /// True when, at `now`, every cached structure's unreimbursed
    /// maintenance has crossed its failure threshold (footnote 3's
    /// `fail_factor × build cost`) — the cache as a whole "can no longer
    /// pay maintenance". Trivially true when the cache is empty.
    ///
    /// Structures whose upkeep never accrues (zero threshold or free
    /// maintenance) are treated as insolvent too: they cost nothing to
    /// keep and must not block a drain forever.
    ///
    /// Read-only — the elastic fleet control plane polls this on its
    /// review cadence before retiring a drained node.
    #[must_use]
    pub fn structures_insolvent(&self, estimator: &Estimator, now: SimTime) -> bool {
        let fail_factor = self.config.failure.fail_factor;
        self.cache.iter().all(|s| {
            let threshold = s.build_cost.scale(fail_factor);
            if threshold.is_zero() {
                return true;
            }
            let span = now.saturating_since(s.maint_paid_until);
            let unpaid = s.maint_forgiven + estimator.maintenance(s, span);
            unpaid > threshold
        })
    }

    /// Releases a structure for evacuation: evicts it from the cache and
    /// clears its regret, **without touching the account** — the capital
    /// sunk into the structure stays on this node's books (the fault
    /// plane nets it out of the crash write-off when the move settles).
    /// Returns the removed structure, or `None` if absent.
    ///
    /// Mirrored exactly by crash-recovery replay (a journaled release is
    /// replayed through this same method), so evacuation preserves the
    /// zero-drift reconciliation contract.
    pub fn evacuate_release(&mut self, key: StructureKey, now: SimTime) -> Option<CachedStructure> {
        let removed = self.cache.evict(key, now);
        if removed.is_some() {
            self.regret.reset(key);
        }
        removed
    }

    /// Receives an evacuated structure at eq. 12's column-move price:
    /// withdraws `transfer_cost` (the wire cost of the bytes — strictly
    /// below a from-scratch build, which also pays the eq. 9 scan) as
    /// investment capital, installs the structure available after
    /// `transfer_time`, and clears any regret accrued while it was
    /// missing. Amortization restarts over the receiver's own horizon:
    /// the structure's book value here is what *this* node paid for it.
    ///
    /// Returns `false` without mutating when the structure is already
    /// cached or the account cannot fund the transfer.
    pub fn evacuate_receive(
        &mut self,
        key: StructureKey,
        size_bytes: u64,
        transfer_cost: Money,
        transfer_time: SimDuration,
        now: SimTime,
        estimator: &Estimator,
    ) -> bool {
        if self.cache.contains(key) || self.account.withdraw_investment(transfer_cost).is_err() {
            return false;
        }
        let amortize_n = self.config.enumeration(self.arrival_rate()).amortize_n;
        self.cache.install(
            key,
            size_bytes,
            now,
            transfer_time,
            transfer_cost,
            amortize_n,
        );
        self.regret.reset(key);
        // The received structure can be the next to fail; fold its
        // crossing time into the failure bound without a full rescan.
        if let Some(s) = self.cache.get(key) {
            let bound = failure_bound_for(s, estimator, self.config.failure.fail_factor);
            self.next_failure_check = self.next_failure_check.min(bound);
        }
        true
    }

    /// Processes one query at its arrival instant.
    ///
    /// # Panics
    /// Panics if `now` precedes a previous arrival (the simulator feeds
    /// queries in time order).
    pub fn process_query(
        &mut self,
        ctx: &PlannerContext<'_>,
        query: &Query,
        now: SimTime,
    ) -> QueryOutcome {
        self.queries_seen += 1;
        if self.first_arrival.is_none() {
            self.first_arrival = Some(now);
        }
        assert!(
            now >= self.last_arrival,
            "queries must arrive in time order"
        );
        self.last_arrival = now;

        // (1) Accrue occupancy; fail structures whose unpaid maintenance
        // exceeded the threshold. The full scan runs only when the
        // failure-time lower bound says a failure is possible — on skipped
        // queries a fresh scan would provably find nothing.
        self.cache.advance(now);
        let estimator = ctx.estimator;
        let failed = if now.as_secs() >= self.next_failure_check {
            let failed =
                self.cache
                    .failed_structures(now, self.config.failure.fail_factor, |s, span| {
                        estimator.maintenance(s, span)
                    });
            for &key in &failed {
                self.cache.evict(key, now);
                self.regret.reset(key);
            }
            self.refresh_failure_bound(estimator);
            failed
        } else {
            debug_assert!(
                self.cache
                    .failed_structures(now, self.config.failure.fail_factor, |s, span| {
                        estimator.maintenance(s, span)
                    })
                    .is_empty(),
                "failure bound must be conservative"
            );
            Vec::new()
        };

        // (2)+(3)+(4a) Enumerate (or reuse the memoized plan set), skyline,
        // form the user budget and run the case analysis.
        let planned = self.plan_query(ctx, query, now);
        debug_assert!(planned.chosen.is_existing(), "only existing plans execute");

        // (4b) Settlement: LRU refresh, amortisation installment and
        // maintenance checkpoint in one pass per used structure.
        let (amortization_collected, maintenance_collected) = self.cache.settle_usage(
            &planned.chosen.uses,
            now,
            planned.opts.maint_window,
            |s, span| estimator.maintenance(s, span),
        );
        debug_assert_eq!(
            amortization_collected, planned.chosen.amortized_cost,
            "quoted amortisation must match collected"
        );
        debug_assert_eq!(
            maintenance_collected, planned.chosen.maintenance_cost,
            "quoted maintenance must match collected"
        );
        self.account.deposit_payment(planned.payment);

        // (5) Regret distribution (eqs. 1–2). The paper distributes over
        // "every physical structure used by the plan"; we concentrate the
        // share on the plan's *missing* structures — the only ones an
        // investment can act on (already-built structures would have their
        // regret immediately discarded by the investment scan anyway).
        // Among the missing, extra CPU nodes only receive regret once the
        // plan's data (columns/indexes) is all present: booting a node
        // cannot help a plan that still lacks its columns, and letting it
        // accumulate regret would churn capital on idle nodes. Both
        // refinements are recorded as deviations in DESIGN.md.
        for (amount, missing) in &planned.regrets {
            let data_missing: Vec<StructureKey> = missing
                .iter()
                .copied()
                .filter(|k| !matches!(k, StructureKey::Node(_)))
                .collect();
            let attribution = self.config.regret_attribution;
            if data_missing.is_empty() {
                self.regret.distribute(missing, *amount, attribution);
            } else {
                self.regret.distribute(&data_missing, *amount, attribution);
            }
        }

        // (6) Investment (eq. 3 + conservative gate) — skipped entirely
        // once the fault plane froze investment (imminent planned crash).
        let investments = if self.investment_frozen {
            Vec::new()
        } else {
            self.consider_investments(ctx, now, planned.opts.amortize_n)
        };

        let ran_in_cache = planned.chosen.shape != planner::plan::PlanShape::Backend;
        QueryOutcome {
            case: planned.case,
            response_time: planned.chosen.exec_time,
            payment: planned.payment,
            profit: planned.profit,
            exec_cost: planned.chosen.exec_cost,
            exec_breakdown: planned.chosen.exec_breakdown,
            ran_in_cache,
            used_structures: planned.chosen.uses,
            investments,
            evictions: failed,
            maintenance_collected,
            amortization_collected,
        }
    }

    /// Steps (2)–(4a) of the control loop: obtain the costed plan set
    /// (memoized per template when the query fingerprint allows — see
    /// [`crate::plancache`]), reduce it to the two-tier skyline, form the
    /// user's budget and run the case analysis.
    ///
    /// Existing plans are skylined among themselves (they are the
    /// executable menu — a *possible* plan may dominate them on paper but
    /// cannot run yet), while possible plans must survive the skyline of
    /// the full set to be worth regretting. The budget is the configured
    /// shape at `budget_scale × backend price` with deadline
    /// `patience × backend time`.
    fn plan_query(&self, ctx: &PlannerContext<'_>, query: &Query, now: SimTime) -> Planned {
        self.plan_query_with(ctx, query, now, None, |plans, opts| {
            self.select_from(query, plans, opts)
        })
    }

    /// The planning engine behind both [`Self::plan_query`] and the quote
    /// paths, with an optional shared lazy skeleton (the fleet's quote
    /// rounds create one per query and share it across every bidding
    /// node; it is built only if some node actually needs it) and a
    /// caller-chosen selection: the serving path runs the full case
    /// analysis ([`Self::select_from`]), while quotes run the payment-only
    /// variant ([`Self::select_payment_from`]) that skips the chosen-plan
    /// and regret clones. Memo state transitions (lookups, refreshes,
    /// installs, LRU stamps, counters) are identical either way — the
    /// `select` callback is pure.
    ///
    /// Planning factors into the cache-independent skeleton and the cheap
    /// per-node completion. A memo lookup whose fingerprint matches but
    /// whose cache epoch moved re-runs only the completion phase; a fresh
    /// fingerprint adopts the shared skeleton (or builds one) and
    /// memoizes it. With memoization disabled, planning runs the fused
    /// enumerator — the reference the bit-identity suites compare the
    /// split path against.
    fn plan_query_with<R>(
        &self,
        ctx: &PlannerContext<'_>,
        query: &Query,
        now: SimTime,
        shared: Option<&LazySkeleton<'_>>,
        select: impl Fn(&[QueryPlan], EnumerationOptions) -> R,
    ) -> R {
        let opts = self.config.enumeration(self.arrival_rate());
        let estimator = ctx.estimator;

        if !self.config.plan_cache {
            let mut buf = self.planbuf.borrow_mut();
            match shared {
                Some(lazy) => complete_plans_into(
                    lazy.get(),
                    &self.cache,
                    now,
                    opts,
                    |s, span| estimator.maintenance(s, span),
                    &mut buf,
                ),
                None => enumerate_plans_into(ctx, query, &self.cache, now, opts, &mut buf),
            }
            let plans = buf.take();
            let planned = select(&plans, opts);
            buf.recycle(plans);
            return planned;
        }

        let epoch = self.cache.epoch(now);
        let mut pc = self.plancache.borrow_mut();
        pc.prepare_fingerprint(query);

        if let Some(slot) = pc.matching_slot(query.template.0) {
            if slot.completion_current(epoch, &opts) {
                let refreshed = !slot.prices_current(&self.cache, now, &opts);
                if refreshed {
                    slot.refresh_prices(&self.cache, now, opts, |s, span| {
                        estimator.maintenance(s, span)
                    });
                }
                let planned = select(&slot.plans, opts);
                pc.count_hit(refreshed);
                return planned;
            }
            // The skeleton is cache-independent and still valid: re-run
            // only the completion phase against the moved cache state.
            // Built lazily here when the miss installed none (drifting
            // fingerprints never reach this arm and never pay for one);
            // a quote round's shared skeleton is preferred so fleet
            // nodes build at most one between them.
            let skeleton = Arc::clone(slot.skeleton.get_or_insert_with(|| match shared {
                Some(lazy) => Arc::clone(lazy.get()),
                None => Arc::new(PlanSkeleton::build(ctx, query)),
            }));
            let mut buf = self.planbuf.borrow_mut();
            complete_plans_into(
                &skeleton,
                &self.cache,
                now,
                opts,
                |s, span| estimator.maintenance(s, span),
                &mut buf,
            );
            let plans = buf.take();
            let missing_builds = buf.take_missing_costs();
            let (old_plans, old_costs) = slot.replace_completion(
                epoch,
                self.cache.settle_seq(),
                opts,
                now,
                plans,
                missing_builds,
            );
            buf.recycle(old_plans);
            buf.recycle_missing_costs(old_costs);
            drop(buf);
            let planned = select(&slot.plans, opts);
            pc.count_completion();
            return planned;
        }
        pc.count_miss();

        // Fresh fingerprint: adopt the quote round's shared skeleton when
        // one exists (a fleet's nodes amortize one build between them),
        // else enumerate fused — a drifting workload that never repeats
        // a fingerprint should not build skeletons it will never reuse;
        // the first epoch-stale re-completion builds one on demand.
        let skeleton = shared.map(|lazy| Arc::clone(lazy.get()));
        let mut buf = self.planbuf.borrow_mut();
        match &skeleton {
            Some(skel) => complete_plans_into(
                skel,
                &self.cache,
                now,
                opts,
                |s, span| estimator.maintenance(s, span),
                &mut buf,
            ),
            None => enumerate_plans_into(ctx, query, &self.cache, now, opts, &mut buf),
        }
        let plans = buf.take();
        // The per-plan missing-structure build quotes are epoch-stable;
        // memoizing them lets refreshes re-derive first installments under
        // whatever amortisation horizon the arrival rate implies later.
        let missing_builds = buf.take_missing_costs();
        let planned = select(&plans, opts);

        let settle_seq = self.cache.settle_seq();
        if let Some((old_plans, old_costs)) = pc.install_slot(
            query.template.0,
            skeleton,
            epoch,
            settle_seq,
            opts,
            now,
            plans,
            missing_builds,
        ) {
            buf.recycle(old_plans);
            buf.recycle_missing_costs(old_costs);
        }
        planned
    }

    /// Skyline partition + budget + case analysis over an enumerated plan
    /// set (backend plan first), extracting what the control loop needs
    /// without cloning the set. Both the skyline and the case analysis
    /// scan the struct-of-arrays projection of the plans' hot fields
    /// ([`PlanHot`]) instead of the plan structs themselves.
    fn select_from(&self, query: &Query, plans: &[QueryPlan], opts: EnumerationOptions) -> Planned {
        let backend = &plans[0];
        debug_assert_eq!(
            backend.shape,
            planner::plan::PlanShape::Backend,
            "enumeration emits the backend plan first"
        );
        let budget = BudgetFunction::of_shape(
            self.config.budget_shape,
            backend.price.scale(query.budget_scale),
            backend.exec_time * self.config.patience,
        );
        let mut scratch = self.sky_scratch.borrow_mut();
        let SkyScratch { hot, order, sky } = &mut *scratch;
        hot.fill(plans);
        let _existing = skyline_partition_hot(hot, order, sky);
        let selection = select_plan_hot(hot, sky, &budget, self.config.objective);
        let chosen = plans[sky[selection.selected]].clone();
        let regrets = selection
            .regrets
            .iter()
            .map(|&(i, amount)| (amount, plans[sky[i]].missing.clone()))
            .collect();
        Planned {
            opts,
            case: selection.case,
            payment: selection.payment,
            profit: selection.profit,
            chosen,
            regrets,
        }
    }

    /// Payment-only [`Self::select_from`]: the same budget formation,
    /// skyline partition and case analysis, but returning just the bid.
    /// Quote paths never act on the chosen plan or the regret list, so
    /// skipping their clones (a `QueryPlan` plus one missing-list `Vec`
    /// per regret, per node, per query) keeps the quote round
    /// allocation-free after warmup.
    fn select_payment_from(&self, query: &Query, plans: &[QueryPlan]) -> Money {
        let backend = &plans[0];
        debug_assert_eq!(
            backend.shape,
            planner::plan::PlanShape::Backend,
            "enumeration emits the backend plan first"
        );
        let budget = BudgetFunction::of_shape(
            self.config.budget_shape,
            backend.price.scale(query.budget_scale),
            backend.exec_time * self.config.patience,
        );
        let mut scratch = self.sky_scratch.borrow_mut();
        let SkyScratch { hot, order, sky } = &mut *scratch;
        hot.fill(plans);
        let _existing = skyline_partition_hot(hot, order, sky);
        select_payment_hot(hot, sky, &budget, self.config.objective)
    }

    /// Recomputes the lower bound on the earliest instant any cached
    /// structure's unpaid maintenance can cross its failure threshold.
    ///
    /// Maintenance accrual is linear in the span (eqs. 11/13/15), so per
    /// structure the crossing time has the closed form
    /// `maint_paid_until + (threshold − forgiven)/rate`; the bound backs
    /// the rate off by a safety margin dominating both float error and
    /// nano-dollar rounding, so skipping the scan below the bound can
    /// never delay an eviction. Settlements only push crossings later
    /// (the capped window forgives less than the span it clears), and
    /// installs feed the bound directly, so it stays conservative between
    /// refreshes.
    fn refresh_failure_bound(&mut self, estimator: &Estimator) {
        let fail_factor = self.config.failure.fail_factor;
        let mut bound = f64::INFINITY;
        for s in self.cache.iter() {
            bound = bound.min(failure_bound_for(s, estimator, fail_factor));
        }
        self.next_failure_check = bound;
    }

    /// Quotes the price `B_Q(t)` this cloud would charge for `query` at
    /// `now`, without mutating any economy state — the marketplace bid a
    /// fleet router compares across competing clouds.
    ///
    /// The quote runs the same (memoized) planning → skyline → case
    /// analysis as [`process_query`](Self::process_query) but skips its
    /// side effects, so the realized price can differ from the quote in
    /// two ways: serving the query first evicts structures whose
    /// maintenance failed, and it updates the observed arrival statistics
    /// that the enumeration options (amortisation horizon, maintenance
    /// window) derive from. Routers treat quotes as bids, not contracts.
    /// A quote does warm the plan cache: the winning node's serving call
    /// reuses the plan set its own bid enumerated.
    #[must_use]
    pub fn quote_query(&self, ctx: &PlannerContext<'_>, query: &Query, now: SimTime) -> Money {
        self.plan_query_with(ctx, query, now, None, |plans, _| {
            self.select_payment_from(query, plans)
        })
    }

    /// [`Self::quote_query`] drawing the cache-independent
    /// [`PlanSkeleton`] from the quote round's shared lazy cell instead
    /// of enumerating from scratch — the fleet builds at most one
    /// skeleton per query, on first need, and every bidding node binds
    /// it against its own cache state.
    ///
    /// Identical to [`Self::quote_query`] bit for bit: the skeleton is a
    /// pure function of `(ctx, query)`, so adopting the shared one changes
    /// nothing but the work done. The quote warms the plan cache exactly
    /// as a fresh quote would, so the winning node's serving call reuses
    /// the same completed plan set.
    #[must_use]
    pub fn quote_with_skeleton(
        &self,
        ctx: &PlannerContext<'_>,
        query: &Query,
        skeleton: &LazySkeleton<'_>,
        now: SimTime,
    ) -> Money {
        self.plan_query_with(ctx, query, now, Some(skeleton), |plans, _| {
            self.select_payment_from(query, plans)
        })
    }

    /// Phase 1 of a batched quote round ([`QuoteBatch`]): serves the bid
    /// immediately when the memoized completion is current (exactly the
    /// hit path of [`Self::plan_query_with`], including the LRU stamp
    /// and the price refresh), or reports what completion work the node
    /// needs from the batch.
    ///
    /// `fingerprint` is the round's shared planning fingerprint — a pure
    /// function of the query, derived once per round instead of once per
    /// node and adopted into this manager's memo scratch verbatim.
    fn batch_classify(
        &self,
        ctx: &PlannerContext<'_>,
        query: &Query,
        fingerprint: &[u64],
        now: SimTime,
    ) -> Result<Money, (BatchNeed, EnumerationOptions, u64)> {
        let opts = self.config.enumeration(self.arrival_rate());
        if !self.config.plan_cache {
            return Err((BatchNeed::Unmemoized, opts, 0));
        }
        let epoch = self.cache.epoch(now);
        let mut pc = self.plancache.borrow_mut();
        pc.adopt_fingerprint(fingerprint);
        if let Some(slot) = pc.matching_slot(query.template.0) {
            if slot.completion_current(epoch, &opts) {
                let refreshed = !slot.prices_current(&self.cache, now, &opts);
                if refreshed {
                    slot.refresh_prices(&self.cache, now, opts, |s, span| {
                        ctx.estimator.maintenance(s, span)
                    });
                }
                let payment = self.select_payment_from(query, &slot.plans);
                pc.count_hit(refreshed);
                return Ok(payment);
            }
            return Err((BatchNeed::Completion, opts, epoch));
        }
        pc.count_miss();
        Err((BatchNeed::Miss, opts, epoch))
    }

    /// Phase 3 of a batched quote round: adopts the batch-completed plan
    /// set sitting in this manager's plan buffer — memoizing, selecting
    /// and recycling exactly as the sequential
    /// [`Self::plan_query_with`] would have after its own
    /// `complete_plans_into` call — and returns the bid.
    fn batch_adopt(
        &self,
        need: BatchNeed,
        opts: EnumerationOptions,
        epoch: u64,
        skel: &Arc<PlanSkeleton>,
        query: &Query,
        now: SimTime,
    ) -> Money {
        match need {
            BatchNeed::Unmemoized => {
                let mut buf = self.planbuf.borrow_mut();
                let plans = buf.take();
                let payment = self.select_payment_from(query, &plans);
                buf.recycle(plans);
                payment
            }
            BatchNeed::Completion => {
                let mut pc = self.plancache.borrow_mut();
                let slot = pc
                    .rematch_slot(query.template.0)
                    .expect("classified slot vanished between batch phases");
                slot.skeleton.get_or_insert_with(|| Arc::clone(skel));
                let mut buf = self.planbuf.borrow_mut();
                let plans = buf.take();
                let missing_builds = buf.take_missing_costs();
                let (old_plans, old_costs) = slot.replace_completion(
                    epoch,
                    self.cache.settle_seq(),
                    opts,
                    now,
                    plans,
                    missing_builds,
                );
                buf.recycle(old_plans);
                buf.recycle_missing_costs(old_costs);
                drop(buf);
                let payment = self.select_payment_from(query, &slot.plans);
                pc.count_completion();
                payment
            }
            BatchNeed::Miss => {
                let mut buf = self.planbuf.borrow_mut();
                let plans = buf.take();
                let missing_builds = buf.take_missing_costs();
                let payment = self.select_payment_from(query, &plans);
                let settle_seq = self.cache.settle_seq();
                let mut pc = self.plancache.borrow_mut();
                if let Some((old_plans, old_costs)) = pc.install_slot(
                    query.template.0,
                    Some(Arc::clone(skel)),
                    epoch,
                    settle_seq,
                    opts,
                    now,
                    plans,
                    missing_builds,
                ) {
                    buf.recycle(old_plans);
                    buf.recycle_missing_costs(old_costs);
                }
                payment
            }
        }
    }

    /// Builds every structure the investment rule triggers, most regretted
    /// first, re-checking funds as the balance drains.
    fn consider_investments(
        &mut self,
        ctx: &PlannerContext<'_>,
        now: SimTime,
        amortize_n: u64,
    ) -> Vec<(StructureKey, Money)> {
        let mut built = Vec::new();
        let threshold = self.config.investment.threshold(self.account.balance());
        let candidates = self.regret.over_threshold(threshold);
        for (key, regret_value) in candidates {
            if self.cache.contains(key) {
                // Already built (regret accrued on an existing structure —
                // the "commonly used" signal); clear it.
                self.regret.reset(key);
                continue;
            }
            let (cost, time, size) = self.quote_build(ctx, key);
            if !self
                .config
                .investment
                .should_build(regret_value, self.account.balance(), cost)
            {
                continue;
            }
            if self.account.withdraw_investment(cost).is_err() {
                continue;
            }
            self.cache.install(key, size, now, time, cost, amortize_n);
            self.regret.reset(key);
            // The new structure can be the next to fail; fold its crossing
            // time into the failure bound without a full rescan.
            if let Some(s) = self.cache.get(key) {
                let bound = failure_bound_for(s, ctx.estimator, self.config.failure.fail_factor);
                self.next_failure_check = self.next_failure_check.min(bound);
            }
            built.push((key, cost));
        }
        built
    }

    /// Build quote for a structure: (cost, build time, disk size).
    fn quote_build(
        &self,
        ctx: &PlannerContext<'_>,
        key: StructureKey,
    ) -> (Money, simcore::SimDuration, u64) {
        match key {
            StructureKey::Column(c) => {
                let (cost, time) = ctx.estimator.build_column(ctx.schema, c);
                (cost, time, ctx.schema.column_bytes(c))
            }
            StructureKey::Index(id) => {
                let def = &ctx.candidates[id.index()];
                let cache = &self.cache;
                let (cost, time) = ctx
                    .estimator
                    .build_index(ctx.schema, def, |c| cache.contains(StructureKey::Column(c)));
                (cost, time, def.size_bytes(ctx.schema))
            }
            StructureKey::Node(_) => {
                let (cost, time) = ctx.estimator.build_node();
                (cost, time, 0)
            }
        }
    }
}

/// What a batched quote round still owes a node after classification.
#[derive(Debug, Clone, Copy)]
enum BatchNeed {
    /// Plan memoization disabled: complete, select, recycle.
    Unmemoized,
    /// Memoized skeleton with a stale completion: re-complete into the
    /// slot.
    Completion,
    /// Fresh fingerprint: complete and install a new slot.
    Miss,
}

/// One batch member: a node whose bid needs the shared completion pass.
#[derive(Debug, Clone, Copy)]
struct BatchMember {
    /// Caller-side node index.
    node: usize,
    need: BatchNeed,
    opts: EnumerationOptions,
    epoch: u64,
}

/// Reusable workspace for **batched quote rounds** — the structure-major
/// inversion of the fleet's per-node quote fan-out.
///
/// A round classifies every node first ([`EconomyManager::batch_classify`]
/// serves memo hits immediately), then runs *one*
/// [`BatchCompleter::gather`] pass over the caches of every node that
/// still needs completion, and finally adopts each node's emitted plan
/// set into its own plan memo. Every phase mirrors the sequential
/// [`EconomyManager::quote_with_skeleton`] exactly — same bids, same memo
/// state (including LRU stamps), same counters — so routing decisions are
/// bit-identical whichever path a fleet uses; `tests/batch_completion.rs`
/// pins it.
///
/// The bulk scratch (completer lanes, member list, bid vector, shared
/// fingerprint) is retained across rounds, so quote rounds are
/// allocation-free after warmup.
#[derive(Debug, Default)]
pub struct QuoteBatch {
    completer: BatchCompleter,
    members: Vec<BatchMember>,
    bids: Vec<Money>,
    /// Round-shared planning fingerprint scratch: derived once per round
    /// from the query and adopted by every classified node, instead of
    /// each node re-deriving the identical word vector.
    fingerprint: Vec<u64>,
}

impl QuoteBatch {
    /// An empty workspace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Quotes one round of `count` nodes' bids for `query` at `now`.
    ///
    /// `manager_of(i)` returns node `i`'s economy manager when its quotes
    /// factor through batched completion (`None` falls back to
    /// `fallback(i)`, which must produce the node's bid some other way).
    /// Both closures must be stable for the duration of the call, every
    /// returned manager must be distinct, and `skeleton` is the round's
    /// shared lazy skeleton — built at most once, only if some node
    /// actually needs completion.
    ///
    /// Returns the bids, indexed by node.
    ///
    /// # Panics
    /// Panics if a classified node's memo slot disappears between phases
    /// (the closures were not stable).
    #[allow(clippy::too_many_arguments)] // one parameter per round input
    pub fn quote_round<'m, M, F>(
        &mut self,
        count: usize,
        manager_of: M,
        fallback: F,
        ctx: &PlannerContext<'_>,
        query: &Query,
        skeleton: &LazySkeleton<'_>,
        now: SimTime,
    ) -> &[Money]
    where
        M: Fn(usize) -> Option<&'m EconomyManager>,
        F: Fn(usize) -> Money,
    {
        self.bids.clear();
        self.bids.resize(count, Money::ZERO);
        self.members.clear();
        planner::planning_fingerprint(query, &mut self.fingerprint);
        for i in 0..count {
            match manager_of(i) {
                None => self.bids[i] = fallback(i),
                Some(m) => match m.batch_classify(ctx, query, &self.fingerprint, now) {
                    Ok(bid) => self.bids[i] = bid,
                    Err((need, opts, epoch)) => self.members.push(BatchMember {
                        node: i,
                        need,
                        opts,
                        epoch,
                    }),
                },
            }
        }

        if !self.members.is_empty() {
            let skel = Arc::clone(skeleton.get());
            // The node-major probe sweep binds each member's view once
            // per node (not once per probe), so the round resolves
            // managers straight through the caller's lookup instead of
            // materialising a resolved vector — quote rounds are
            // allocation-free after warmup.
            let members = &self.members;
            let completer = &mut self.completer;
            let member_manager = |j: usize| {
                manager_of(members[j].node).expect("batch member manager vanished between phases")
            };
            completer.gather(
                &skel,
                members.len(),
                |j| CacheView {
                    cache: member_manager(j).cache(),
                    opts: members[j].opts,
                },
                now,
                |s, span| ctx.estimator.maintenance(s, span),
            );
            for (j, member) in self.members.iter().enumerate() {
                let m =
                    manager_of(member.node).expect("batch member manager vanished between phases");
                {
                    let mut buf = m.planbuf.borrow_mut();
                    self.completer.emit_into(&skel, j, &mut buf);
                }
                self.bids[member.node] =
                    m.batch_adopt(member.need, member.opts, member.epoch, &skel, query, now);
            }
        }
        &self.bids
    }
}

/// Earliest instant (seconds) at which `s`'s unpaid maintenance can
/// exceed `fail_factor × build_cost` — a conservative lower bound on its
/// failure time (see [`EconomyManager::refresh_failure_bound`]).
fn failure_bound_for(s: &CachedStructure, estimator: &Estimator, fail_factor: f64) -> f64 {
    let threshold = s.build_cost.scale(fail_factor);
    if threshold.is_zero() {
        return f64::INFINITY; // zero-threshold structures never fail
    }
    let headroom_nanos = (threshold - s.maint_forgiven).as_nanos();
    if headroom_nanos <= 0 {
        // Already written off past the threshold: any positive accrual
        // fails it. (`> threshold` is strict, so it has not failed *yet*.)
        return s.maint_paid_until.as_secs();
    }
    // Per-second rate sampled over a span long enough that nano-dollar
    // rounding is negligible (|error| ≤ 0.5e-9 $ / 1e9 s).
    const BIG_SPAN_SECS: f64 = 1e9;
    let rate = estimator
        .maintenance(s, SimDuration::from_secs(BIG_SPAN_SECS))
        .as_dollars()
        / BIG_SPAN_SECS;
    if rate <= 0.0 {
        return f64::INFINITY; // free maintenance never accrues debt
    }
    // Back the rate off so the bound under-estimates the crossing even
    // under rounding (+1e-18 dominates the sampling error, the relative
    // margin dominates float arithmetic error), and leave one nano-dollar
    // of headroom for the final charge's round-to-nearest.
    let rate_upper = rate * (1.0 + 1e-9) + 1e-18;
    let safe_span = (headroom_nanos - 1) as f64 / 1e9 / rate_upper;
    s.maint_paid_until.as_secs() + safe_span
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::BudgetShape;
    use crate::selection::SelectionObjective;
    use catalog::tpch::{tpch_schema, ScaleFactor};
    use catalog::Schema;
    use planner::{generate_candidates, CostParams, Estimator};
    use pricing::PriceCatalog;
    use simcore::NetworkModel;
    use std::sync::Arc;
    use workload::{paper_templates, WorkloadConfig, WorkloadGenerator};

    struct Fixture {
        schema: Arc<Schema>,
        candidates: Vec<cache::IndexDef>,
        cand_index: planner::CandidateIndex,
        estimator: Estimator,
    }

    impl Fixture {
        fn new(sf: f64) -> Self {
            let schema = Arc::new(tpch_schema(ScaleFactor(sf)));
            let templates = paper_templates(&schema);
            let candidates = generate_candidates(&schema, &templates, 65);
            let cand_index = planner::CandidateIndex::build(&schema, &candidates);
            let estimator = Estimator::new(
                CostParams::default(),
                PriceCatalog::ec2_2009(),
                NetworkModel::paper_sdss(),
            );
            Fixture {
                schema,
                candidates,
                cand_index,
                estimator,
            }
        }

        fn ctx(&self) -> PlannerContext<'_> {
            PlannerContext {
                schema: &self.schema,
                candidates: &self.candidates,
                cand_index: &self.cand_index,
                estimator: &self.estimator,
            }
        }

        fn generator(&self, seed: u64) -> WorkloadGenerator {
            WorkloadGenerator::new(Arc::clone(&self.schema), WorkloadConfig::default(), seed)
        }
    }

    /// A config whose economics bite within a few hundred queries at
    /// SF 10 (the defaults are tuned for the paper's 2.5 TB / 10^6-query
    /// scale, where per-query sums are larger).
    fn fast_config() -> EconConfig {
        EconConfig {
            initial_credit: Money::from_dollars(0.02),
            investment: crate::invest::InvestmentRule {
                min_regret: Money::from_dollars(1e-5),
                ..crate::invest::InvestmentRule::default()
            },
            ..EconConfig::default()
        }
    }

    fn drive(
        fixture: &Fixture,
        manager: &mut EconomyManager,
        seed: u64,
        n: usize,
        gap_secs: f64,
    ) -> Vec<QueryOutcome> {
        let mut gen = fixture.generator(seed);
        let ctx = fixture.ctx();
        (0..n)
            .map(|i| {
                let q = gen.next_query();
                let now = SimTime::from_secs((i + 1) as f64 * gap_secs);
                manager.process_query(&ctx, &q, now)
            })
            .collect()
    }

    #[test]
    fn cold_start_answers_at_the_backend() {
        let f = Fixture::new(1.0);
        let mut m = EconomyManager::new(EconConfig::default());
        let outcomes = drive(&f, &mut m, 1, 1, 1.0);
        assert!(!outcomes[0].ran_in_cache, "nothing cached yet");
        assert!(outcomes[0].payment.is_positive());
    }

    #[test]
    fn economy_invests_and_moves_queries_into_the_cache() {
        let f = Fixture::new(10.0);
        let mut m = EconomyManager::new(fast_config());
        let outcomes = drive(&f, &mut m, 2, 2500, 1.0);
        let invested: usize = outcomes.iter().map(|o| o.investments.len()).sum();
        assert!(invested > 0, "regret should trigger investments");
        let late_cache_hits = outcomes[1500..].iter().filter(|o| o.ran_in_cache).count();
        assert!(
            late_cache_hits > 50,
            "late queries should run in the cache, saw {late_cache_hits}"
        );
    }

    #[test]
    fn ledger_balances_exactly_throughout() {
        let f = Fixture::new(1.0);
        let mut m = EconomyManager::new(EconConfig::default());
        let _ = drive(&f, &mut m, 3, 200, 1.0);
        assert!(m.account().balances_exactly());
        assert_eq!(m.account().payment_count(), 200);
    }

    #[test]
    fn profits_are_never_negative() {
        let f = Fixture::new(1.0);
        let mut m = EconomyManager::new(EconConfig::default());
        for o in drive(&f, &mut m, 4, 200, 1.0) {
            assert!(!o.profit.is_negative(), "profit {:?}", o.profit);
            assert!(o.payment >= o.profit);
        }
    }

    #[test]
    fn economy_beats_a_no_investment_baseline() {
        // The honest form of "self-tuning helps": the same workload run
        // through (a) the economy and (b) a cloud that never invests must
        // show lower mean response time and lower mean user charge for (a).
        // (Early-vs-late windows within one run are confounded by the
        // workload's template-popularity drift.)
        let f = Fixture::new(10.0);
        let mut tuned = EconomyManager::new(fast_config());
        let frozen_cfg = EconConfig {
            initial_credit: Money::ZERO,
            investment: crate::invest::InvestmentRule {
                min_regret: Money::from_dollars(1e12),
                ..crate::invest::InvestmentRule::default()
            },
            ..EconConfig::default()
        };
        let mut frozen = EconomyManager::new(frozen_cfg);
        let a = drive(&f, &mut tuned, 5, 2500, 1.0);
        let b = drive(&f, &mut frozen, 5, 2500, 1.0);
        let mean = |os: &[QueryOutcome]| {
            os.iter().map(|o| o.response_time.as_secs()).sum::<f64>() / os.len() as f64
        };
        let profit = |os: &[QueryOutcome]| os.iter().map(|o| o.profit).sum::<Money>();
        assert!(
            b.iter().all(|o| !o.ran_in_cache),
            "frozen cloud never caches"
        );
        assert!(
            mean(&a) < mean(&b),
            "tuned {:.3}s should beat frozen {:.3}s",
            mean(&a),
            mean(&b)
        );
        // With step budgets the user payment is pinned to the backend
        // price, so the economy's gain shows up as cloud profit (payment −
        // falling plan price), exactly the self-tuning loop of Section IV-A.
        assert!(
            profit(&a) > profit(&b),
            "tuned profit {} should exceed frozen {}",
            profit(&a),
            profit(&b)
        );
    }

    #[test]
    fn column_only_config_never_builds_indexes_or_nodes() {
        let f = Fixture::new(10.0);
        let config = EconConfig {
            allow_indexes: false,
            allow_extra_nodes: false,
            ..fast_config()
        };
        let mut m = EconomyManager::new(config);
        let outcomes = drive(&f, &mut m, 6, 300, 1.0);
        for o in &outcomes {
            for (key, _) in &o.investments {
                assert!(
                    matches!(key, StructureKey::Column(_)),
                    "econ-col built {key}"
                );
            }
        }
    }

    #[test]
    fn conservative_cloud_with_no_credit_builds_nothing() {
        let f = Fixture::new(1.0);
        let config = EconConfig {
            initial_credit: Money::ZERO,
            ..EconConfig::default()
        };
        let mut m = EconomyManager::new(config);
        // Profit trickles in, so eventually it can invest — but in the
        // first handful of queries the balance cannot cover a column build.
        let outcomes = drive(&f, &mut m, 7, 5, 1.0);
        let early_builds: usize = outcomes.iter().map(|o| o.investments.len()).sum();
        assert_eq!(early_builds, 0, "no capital, no builds");
    }

    #[test]
    fn arrival_rate_is_observed() {
        let f = Fixture::new(1.0);
        let mut m = EconomyManager::new(EconConfig::default());
        assert_eq!(m.arrival_rate(), 0.0);
        let _ = drive(&f, &mut m, 8, 11, 2.0);
        assert!(
            (m.arrival_rate() - 0.5).abs() < 1e-9,
            "{}",
            m.arrival_rate()
        );
    }

    #[test]
    fn budget_shape_is_respected() {
        // A concave budget pays more than price for fast plans; the run
        // should still satisfy all invariants.
        let f = Fixture::new(1.0);
        let config = EconConfig {
            budget_shape: BudgetShape::Concave,
            objective: SelectionObjective::MinProfit,
            ..EconConfig::default()
        };
        let mut m = EconomyManager::new(config);
        let outcomes = drive(&f, &mut m, 9, 50, 1.0);
        assert!(outcomes.iter().all(|o| !o.profit.is_negative()));
        assert!(m.account().balances_exactly());
    }

    #[test]
    fn evictions_eventually_happen_when_disk_is_expensive() {
        let f = Fixture::new(10.0);
        // Make disk brutally expensive so built structures fail quickly at
        // long inter-arrival gaps.
        let pricey = PriceCatalog::custom(
            "disk-heavy",
            pricing::ResourceRates {
                disk_byte_per_sec: 1e-11,
                ..PriceCatalog::ec2_2009().rates
            },
            60.0,
        );
        let estimator = Estimator::new(CostParams::default(), pricey, NetworkModel::paper_sdss());
        let fx = Fixture {
            schema: Arc::clone(&f.schema),
            candidates: f.candidates.clone(),
            cand_index: f.cand_index.clone(),
            estimator,
        };
        let mut m = EconomyManager::new(fast_config());
        let outcomes = drive(&fx, &mut m, 10, 400, 60.0);
        let evictions: usize = outcomes.iter().map(|o| o.evictions.len()).sum();
        let builds: usize = outcomes.iter().map(|o| o.investments.len()).sum();
        assert!(builds > 0, "should still build something");
        assert!(
            evictions > 0,
            "expensive disk at long gaps must cause structure failure"
        );
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_queries_rejected() {
        let f = Fixture::new(1.0);
        let mut m = EconomyManager::new(EconConfig::default());
        let mut gen = f.generator(11);
        let ctx = f.ctx();
        let q1 = gen.next_query();
        let q2 = gen.next_query();
        m.process_query(&ctx, &q1, SimTime::from_secs(10.0));
        m.process_query(&ctx, &q2, SimTime::from_secs(5.0));
    }

    #[test]
    #[should_panic(expected = "invalid economy config")]
    fn bad_config_rejected() {
        let config = EconConfig {
            patience: 0.0,
            ..EconConfig::default()
        };
        let _ = EconomyManager::new(config);
    }
}
