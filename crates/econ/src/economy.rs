//! The economy manager — Section IV's control loop, one query at a time.
//!
//! For each incoming query the manager:
//!
//! 1. accrues disk occupancy and evicts *failed* structures (footnote 3);
//! 2. enumerates `P_Q = P_exist ∪ P_pos` via the planner and reduces it to
//!    the skyline (footnote 2);
//! 3. forms the user's budget function from the backend plan (users
//!    "accept query execution in the back-end", so their willingness is a
//!    multiple of the backend price and their deadline a multiple of the
//!    backend time);
//! 4. runs the case analysis (Section IV-C), charges the user, credits
//!    profit, and settles maintenance + amortisation installments on the
//!    used structures;
//! 5. distributes the rejected-plan regret over structures (eqs. 1–2);
//! 6. applies the investment rule (eq. 3) and builds what it triggers,
//!    paying from the account.

use cache::{CacheState, StructureKey};
use planner::{enumerate_plans, skyline_filter, PlannerContext, QueryPlan};
use pricing::Money;
use simcore::SimTime;
use workload::Query;

use crate::account::CloudAccount;
use crate::budget::BudgetFunction;
use crate::config::EconConfig;
use crate::outcome::QueryOutcome;
use crate::regret::RegretLedger;
use crate::selection::select_plan;

/// The paper's self-tuned economy, owning the cloud account, the cache
/// state and the regret ledger.
#[derive(Debug)]
pub struct EconomyManager {
    config: EconConfig,
    account: CloudAccount,
    cache: CacheState,
    regret: RegretLedger,
    queries_seen: u64,
    first_arrival: Option<SimTime>,
    last_arrival: SimTime,
}

impl EconomyManager {
    /// Creates a manager with an empty cache.
    ///
    /// # Panics
    /// Panics if `config` is invalid.
    #[must_use]
    pub fn new(config: EconConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid economy config: {msg}");
        }
        let account = CloudAccount::new(config.initial_credit);
        let pool = config.regret_pool_capacity;
        EconomyManager {
            config,
            account,
            cache: CacheState::new(),
            regret: RegretLedger::new(pool),
            queries_seen: 0,
            first_arrival: None,
            last_arrival: SimTime::ZERO,
        }
    }

    /// The cloud account (`CR` lives here).
    #[must_use]
    pub fn account(&self) -> &CloudAccount {
        &self.account
    }

    /// Mutable account access for the simulator's operating-cost draws.
    pub fn account_mut(&mut self) -> &mut CloudAccount {
        &mut self.account
    }

    /// The cache state.
    #[must_use]
    pub fn cache(&self) -> &CacheState {
        &self.cache
    }

    /// The regret ledger (diagnostics).
    #[must_use]
    pub fn regret(&self) -> &RegretLedger {
        &self.regret
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &EconConfig {
        &self.config
    }

    /// Accrues the cache's time-based integrals (disk occupancy) up to
    /// `now` without processing a query — used by the simulator to close
    /// out a run horizon.
    pub fn advance_to(&mut self, now: SimTime) {
        self.cache.advance(now);
    }

    /// Observed arrival rate (queries/second); 0 before two arrivals.
    #[must_use]
    pub fn arrival_rate(&self) -> f64 {
        match self.first_arrival {
            Some(first) if self.queries_seen >= 2 => {
                let span = (self.last_arrival - first).as_secs();
                if span > 0.0 {
                    (self.queries_seen - 1) as f64 / span
                } else {
                    0.0
                }
            }
            _ => 0.0,
        }
    }

    /// Processes one query at its arrival instant.
    ///
    /// # Panics
    /// Panics if `now` precedes a previous arrival (the simulator feeds
    /// queries in time order).
    pub fn process_query(
        &mut self,
        ctx: &PlannerContext<'_>,
        query: &Query,
        now: SimTime,
    ) -> QueryOutcome {
        self.queries_seen += 1;
        if self.first_arrival.is_none() {
            self.first_arrival = Some(now);
        }
        assert!(
            now >= self.last_arrival,
            "queries must arrive in time order"
        );
        self.last_arrival = now;

        // (1) Accrue occupancy; fail structures whose unpaid maintenance
        // exceeded the threshold.
        self.cache.advance(now);
        let estimator = ctx.estimator;
        let failed =
            self.cache
                .failed_structures(now, self.config.failure.fail_factor, |s, span| {
                    estimator.maintenance(s, span)
                });
        for &key in &failed {
            self.cache.evict(key, now);
            self.regret.reset(key);
        }

        // (2)+(3) Enumerate, skyline, and form the user budget.
        let opts = self.config.enumeration(self.arrival_rate());
        let (skyline, budget) = self.skyline_and_budget(ctx, query, now, opts);

        // (4) Case analysis and settlement.
        let selection = select_plan(&skyline, &budget, self.config.objective);
        let chosen: &QueryPlan = &skyline[selection.selected];
        debug_assert!(chosen.is_existing(), "only existing plans execute");

        self.cache.touch(&chosen.uses, now);
        let amortization_collected = self.cache.charge_amortization(&chosen.uses);
        let maintenance_collected =
            self.cache
                .settle_maintenance(&chosen.uses, now, opts.maint_window, |s, span| {
                    estimator.maintenance(s, span)
                });
        debug_assert_eq!(
            amortization_collected, chosen.amortized_cost,
            "quoted amortisation must match collected"
        );
        debug_assert_eq!(
            maintenance_collected, chosen.maintenance_cost,
            "quoted maintenance must match collected"
        );
        self.account.deposit_payment(selection.payment);

        // (5) Regret distribution (eqs. 1–2). The paper distributes over
        // "every physical structure used by the plan"; we concentrate the
        // share on the plan's *missing* structures — the only ones an
        // investment can act on (already-built structures would have their
        // regret immediately discarded by the investment scan anyway).
        // Among the missing, extra CPU nodes only receive regret once the
        // plan's data (columns/indexes) is all present: booting a node
        // cannot help a plan that still lacks its columns, and letting it
        // accumulate regret would churn capital on idle nodes. Both
        // refinements are recorded as deviations in DESIGN.md.
        for &(idx, amount) in &selection.regrets {
            let missing = &skyline[idx].missing;
            let data_missing: Vec<cache::StructureKey> = missing
                .iter()
                .copied()
                .filter(|k| !matches!(k, StructureKey::Node(_)))
                .collect();
            let attribution = self.config.regret_attribution;
            if data_missing.is_empty() {
                self.regret.distribute(missing, amount, attribution);
            } else {
                self.regret.distribute(&data_missing, amount, attribution);
            }
        }

        // (6) Investment (eq. 3 + conservative gate).
        let investments = self.consider_investments(ctx, now, opts.amortize_n);

        QueryOutcome {
            case: selection.case,
            response_time: chosen.exec_time,
            payment: selection.payment,
            profit: selection.profit,
            exec_cost: chosen.exec_cost,
            exec_breakdown: chosen.exec_breakdown,
            ran_in_cache: chosen.shape != planner::plan::PlanShape::Backend,
            used_structures: chosen.uses.clone(),
            investments,
            evictions: failed,
            maintenance_collected,
            amortization_collected,
        }
    }

    /// Enumerates `P_Q`, reduces it to the skyline and forms the user's
    /// budget function — steps (2) and (3) of the control loop.
    ///
    /// Existing plans are skylined among themselves (they are the
    /// executable menu — a *possible* plan may dominate them on paper but
    /// cannot run yet), while possible plans must survive the skyline of
    /// the full set to be worth regretting. The budget is the configured
    /// shape at `budget_scale × backend price` with deadline
    /// `patience × backend time`.
    fn skyline_and_budget(
        &self,
        ctx: &PlannerContext<'_>,
        query: &Query,
        now: SimTime,
        opts: planner::enumerate::EnumerationOptions,
    ) -> (Vec<QueryPlan>, BudgetFunction) {
        let plans = enumerate_plans(ctx, query, &self.cache, now, opts);
        let backend = plans
            .iter()
            .find(|p| p.shape == planner::plan::PlanShape::Backend)
            .expect("backend plan always enumerated")
            .clone();
        let (exist, _pos): (Vec<QueryPlan>, Vec<QueryPlan>) =
            plans.iter().cloned().partition(QueryPlan::is_existing);
        let mut skyline = skyline_filter(exist);
        skyline.extend(
            skyline_filter(plans)
                .into_iter()
                .filter(|p| !p.is_existing()),
        );
        let budget = BudgetFunction::of_shape(
            self.config.budget_shape,
            backend.price.scale(query.budget_scale),
            backend.exec_time * self.config.patience,
        );
        (skyline, budget)
    }

    /// Quotes the price `B_Q(t)` this cloud would charge for `query` at
    /// `now`, without mutating any state — the marketplace bid a fleet
    /// router compares across competing clouds.
    ///
    /// The quote runs the same enumeration → skyline → case analysis as
    /// [`process_query`](Self::process_query) but skips its side effects,
    /// so the realized price can differ from the quote in two ways:
    /// serving the query first evicts structures whose maintenance
    /// failed, and it updates the observed arrival statistics that the
    /// enumeration options (amortisation horizon, maintenance window)
    /// derive from. Routers treat quotes as bids, not contracts.
    #[must_use]
    pub fn quote_query(&self, ctx: &PlannerContext<'_>, query: &Query, now: SimTime) -> Money {
        let opts = self.config.enumeration(self.arrival_rate());
        let (skyline, budget) = self.skyline_and_budget(ctx, query, now, opts);
        select_plan(&skyline, &budget, self.config.objective).payment
    }

    /// Builds every structure the investment rule triggers, most regretted
    /// first, re-checking funds as the balance drains.
    fn consider_investments(
        &mut self,
        ctx: &PlannerContext<'_>,
        now: SimTime,
        amortize_n: u64,
    ) -> Vec<(StructureKey, Money)> {
        let mut built = Vec::new();
        let threshold = self.config.investment.threshold(self.account.balance());
        let candidates = self.regret.over_threshold(threshold);
        for (key, regret_value) in candidates {
            if self.cache.contains(key) {
                // Already built (regret accrued on an existing structure —
                // the "commonly used" signal); clear it.
                self.regret.reset(key);
                continue;
            }
            let (cost, time, size) = self.quote_build(ctx, key);
            if !self
                .config
                .investment
                .should_build(regret_value, self.account.balance(), cost)
            {
                continue;
            }
            if self.account.withdraw_investment(cost).is_err() {
                continue;
            }
            self.cache.install(key, size, now, time, cost, amortize_n);
            self.regret.reset(key);
            built.push((key, cost));
        }
        built
    }

    /// Build quote for a structure: (cost, build time, disk size).
    fn quote_build(
        &self,
        ctx: &PlannerContext<'_>,
        key: StructureKey,
    ) -> (Money, simcore::SimDuration, u64) {
        match key {
            StructureKey::Column(c) => {
                let (cost, time) = ctx.estimator.build_column(ctx.schema, c);
                (cost, time, ctx.schema.column_bytes(c))
            }
            StructureKey::Index(id) => {
                let def = &ctx.candidates[id.index()];
                let cache = &self.cache;
                let (cost, time) = ctx
                    .estimator
                    .build_index(ctx.schema, def, |c| cache.contains(StructureKey::Column(c)));
                (cost, time, def.size_bytes(ctx.schema))
            }
            StructureKey::Node(_) => {
                let (cost, time) = ctx.estimator.build_node();
                (cost, time, 0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::BudgetShape;
    use crate::selection::SelectionObjective;
    use catalog::tpch::{tpch_schema, ScaleFactor};
    use catalog::Schema;
    use planner::{generate_candidates, CostParams, Estimator};
    use pricing::PriceCatalog;
    use simcore::NetworkModel;
    use std::sync::Arc;
    use workload::{paper_templates, WorkloadConfig, WorkloadGenerator};

    struct Fixture {
        schema: Arc<Schema>,
        candidates: Vec<cache::IndexDef>,
        estimator: Estimator,
    }

    impl Fixture {
        fn new(sf: f64) -> Self {
            let schema = Arc::new(tpch_schema(ScaleFactor(sf)));
            let templates = paper_templates(&schema);
            let candidates = generate_candidates(&schema, &templates, 65);
            let estimator = Estimator::new(
                CostParams::default(),
                PriceCatalog::ec2_2009(),
                NetworkModel::paper_sdss(),
            );
            Fixture {
                schema,
                candidates,
                estimator,
            }
        }

        fn ctx(&self) -> PlannerContext<'_> {
            PlannerContext {
                schema: &self.schema,
                candidates: &self.candidates,
                estimator: &self.estimator,
            }
        }

        fn generator(&self, seed: u64) -> WorkloadGenerator {
            WorkloadGenerator::new(Arc::clone(&self.schema), WorkloadConfig::default(), seed)
        }
    }

    /// A config whose economics bite within a few hundred queries at
    /// SF 10 (the defaults are tuned for the paper's 2.5 TB / 10^6-query
    /// scale, where per-query sums are larger).
    fn fast_config() -> EconConfig {
        EconConfig {
            initial_credit: Money::from_dollars(0.02),
            investment: crate::invest::InvestmentRule {
                min_regret: Money::from_dollars(1e-5),
                ..crate::invest::InvestmentRule::default()
            },
            ..EconConfig::default()
        }
    }

    fn drive(
        fixture: &Fixture,
        manager: &mut EconomyManager,
        seed: u64,
        n: usize,
        gap_secs: f64,
    ) -> Vec<QueryOutcome> {
        let mut gen = fixture.generator(seed);
        let ctx = fixture.ctx();
        (0..n)
            .map(|i| {
                let q = gen.next_query();
                let now = SimTime::from_secs((i + 1) as f64 * gap_secs);
                manager.process_query(&ctx, &q, now)
            })
            .collect()
    }

    #[test]
    fn cold_start_answers_at_the_backend() {
        let f = Fixture::new(1.0);
        let mut m = EconomyManager::new(EconConfig::default());
        let outcomes = drive(&f, &mut m, 1, 1, 1.0);
        assert!(!outcomes[0].ran_in_cache, "nothing cached yet");
        assert!(outcomes[0].payment.is_positive());
    }

    #[test]
    fn economy_invests_and_moves_queries_into_the_cache() {
        let f = Fixture::new(10.0);
        let mut m = EconomyManager::new(fast_config());
        let outcomes = drive(&f, &mut m, 2, 2500, 1.0);
        let invested: usize = outcomes.iter().map(|o| o.investments.len()).sum();
        assert!(invested > 0, "regret should trigger investments");
        let late_cache_hits = outcomes[1500..].iter().filter(|o| o.ran_in_cache).count();
        assert!(
            late_cache_hits > 50,
            "late queries should run in the cache, saw {late_cache_hits}"
        );
    }

    #[test]
    fn ledger_balances_exactly_throughout() {
        let f = Fixture::new(1.0);
        let mut m = EconomyManager::new(EconConfig::default());
        let _ = drive(&f, &mut m, 3, 200, 1.0);
        assert!(m.account().balances_exactly());
        assert_eq!(m.account().payment_count(), 200);
    }

    #[test]
    fn profits_are_never_negative() {
        let f = Fixture::new(1.0);
        let mut m = EconomyManager::new(EconConfig::default());
        for o in drive(&f, &mut m, 4, 200, 1.0) {
            assert!(!o.profit.is_negative(), "profit {:?}", o.profit);
            assert!(o.payment >= o.profit);
        }
    }

    #[test]
    fn economy_beats_a_no_investment_baseline() {
        // The honest form of "self-tuning helps": the same workload run
        // through (a) the economy and (b) a cloud that never invests must
        // show lower mean response time and lower mean user charge for (a).
        // (Early-vs-late windows within one run are confounded by the
        // workload's template-popularity drift.)
        let f = Fixture::new(10.0);
        let mut tuned = EconomyManager::new(fast_config());
        let frozen_cfg = EconConfig {
            initial_credit: Money::ZERO,
            investment: crate::invest::InvestmentRule {
                min_regret: Money::from_dollars(1e12),
                ..crate::invest::InvestmentRule::default()
            },
            ..EconConfig::default()
        };
        let mut frozen = EconomyManager::new(frozen_cfg);
        let a = drive(&f, &mut tuned, 5, 2500, 1.0);
        let b = drive(&f, &mut frozen, 5, 2500, 1.0);
        let mean = |os: &[QueryOutcome]| {
            os.iter().map(|o| o.response_time.as_secs()).sum::<f64>() / os.len() as f64
        };
        let profit = |os: &[QueryOutcome]| os.iter().map(|o| o.profit).sum::<Money>();
        assert!(
            b.iter().all(|o| !o.ran_in_cache),
            "frozen cloud never caches"
        );
        assert!(
            mean(&a) < mean(&b),
            "tuned {:.3}s should beat frozen {:.3}s",
            mean(&a),
            mean(&b)
        );
        // With step budgets the user payment is pinned to the backend
        // price, so the economy's gain shows up as cloud profit (payment −
        // falling plan price), exactly the self-tuning loop of Section IV-A.
        assert!(
            profit(&a) > profit(&b),
            "tuned profit {} should exceed frozen {}",
            profit(&a),
            profit(&b)
        );
    }

    #[test]
    fn column_only_config_never_builds_indexes_or_nodes() {
        let f = Fixture::new(10.0);
        let config = EconConfig {
            allow_indexes: false,
            allow_extra_nodes: false,
            ..fast_config()
        };
        let mut m = EconomyManager::new(config);
        let outcomes = drive(&f, &mut m, 6, 300, 1.0);
        for o in &outcomes {
            for (key, _) in &o.investments {
                assert!(
                    matches!(key, StructureKey::Column(_)),
                    "econ-col built {key}"
                );
            }
        }
    }

    #[test]
    fn conservative_cloud_with_no_credit_builds_nothing() {
        let f = Fixture::new(1.0);
        let config = EconConfig {
            initial_credit: Money::ZERO,
            ..EconConfig::default()
        };
        let mut m = EconomyManager::new(config);
        // Profit trickles in, so eventually it can invest — but in the
        // first handful of queries the balance cannot cover a column build.
        let outcomes = drive(&f, &mut m, 7, 5, 1.0);
        let early_builds: usize = outcomes.iter().map(|o| o.investments.len()).sum();
        assert_eq!(early_builds, 0, "no capital, no builds");
    }

    #[test]
    fn arrival_rate_is_observed() {
        let f = Fixture::new(1.0);
        let mut m = EconomyManager::new(EconConfig::default());
        assert_eq!(m.arrival_rate(), 0.0);
        let _ = drive(&f, &mut m, 8, 11, 2.0);
        assert!(
            (m.arrival_rate() - 0.5).abs() < 1e-9,
            "{}",
            m.arrival_rate()
        );
    }

    #[test]
    fn budget_shape_is_respected() {
        // A concave budget pays more than price for fast plans; the run
        // should still satisfy all invariants.
        let f = Fixture::new(1.0);
        let config = EconConfig {
            budget_shape: BudgetShape::Concave,
            objective: SelectionObjective::MinProfit,
            ..EconConfig::default()
        };
        let mut m = EconomyManager::new(config);
        let outcomes = drive(&f, &mut m, 9, 50, 1.0);
        assert!(outcomes.iter().all(|o| !o.profit.is_negative()));
        assert!(m.account().balances_exactly());
    }

    #[test]
    fn evictions_eventually_happen_when_disk_is_expensive() {
        let f = Fixture::new(10.0);
        // Make disk brutally expensive so built structures fail quickly at
        // long inter-arrival gaps.
        let pricey = PriceCatalog::custom(
            "disk-heavy",
            pricing::ResourceRates {
                disk_byte_per_sec: 1e-11,
                ..PriceCatalog::ec2_2009().rates
            },
            60.0,
        );
        let estimator = Estimator::new(CostParams::default(), pricey, NetworkModel::paper_sdss());
        let fx = Fixture {
            schema: Arc::clone(&f.schema),
            candidates: f.candidates.clone(),
            estimator,
        };
        let mut m = EconomyManager::new(fast_config());
        let outcomes = drive(&fx, &mut m, 10, 400, 60.0);
        let evictions: usize = outcomes.iter().map(|o| o.evictions.len()).sum();
        let builds: usize = outcomes.iter().map(|o| o.investments.len()).sum();
        assert!(builds > 0, "should still build something");
        assert!(
            evictions > 0,
            "expensive disk at long gaps must cause structure failure"
        );
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_queries_rejected() {
        let f = Fixture::new(1.0);
        let mut m = EconomyManager::new(EconConfig::default());
        let mut gen = f.generator(11);
        let ctx = f.ctx();
        let q1 = gen.next_query();
        let q2 = gen.next_query();
        m.process_query(&ctx, &q1, SimTime::from_secs(10.0));
        m.process_query(&ctx, &q2, SimTime::from_secs(5.0));
    }

    #[test]
    #[should_panic(expected = "invalid economy config")]
    fn bad_config_rejected() {
        let config = EconConfig {
            patience: 0.0,
            ..EconConfig::default()
        };
        let _ = EconomyManager::new(config);
    }
}
