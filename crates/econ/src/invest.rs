//! The investment rule — eq. 3 plus the conservative gate.
//!
//! Eq. 3: `InvestIn(S) = round(regret_S / (a · CR))`, `0 < a < 1`: a
//! structure is considered for imminent investment once its accumulated
//! regret reaches the fraction `a` of the cloud credit `CR`.
//!
//! Section VII-A adds: *"The cache provider is conservative and builds
//! structures only when her profit exceeds the cost of building them"* —
//! the account must actually cover the build before money leaves it.

use pricing::Money;
use serde::{Deserialize, Serialize};

/// Investment decision parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvestmentRule {
    /// The `a` of eq. 3, in `(0, 1)`.
    pub regret_fraction: f64,
    /// The conservative gate: require the account to cover the build cost.
    pub conservative: bool,
    /// Regret floor: below this absolute regret no structure is built even
    /// if `a · CR` is tiny (protects a freshly-opened, nearly-empty
    /// account from investing on noise).
    pub min_regret: Money,
}

impl Default for InvestmentRule {
    fn default() -> Self {
        InvestmentRule {
            regret_fraction: 0.1,
            conservative: true,
            min_regret: Money::from_dollars(0.001),
        }
    }
}

impl InvestmentRule {
    /// Validates parameters.
    ///
    /// # Errors
    /// Returns a message for the first invalid field.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !self.regret_fraction.is_finite()
            || self.regret_fraction <= 0.0
            || self.regret_fraction >= 1.0
        {
            return Err("regret_fraction must be in (0, 1)");
        }
        if self.min_regret.is_negative() {
            return Err("min_regret must be non-negative");
        }
        Ok(())
    }

    /// The regret level at which eq. 3 triggers:
    /// `InvestIn(S) = round(regret_S / (a · CR)) ≥ 1` holds once
    /// `regret_S ≥ 0.5 · a · CR` (round-to-nearest), floored by
    /// `min_regret`.
    #[must_use]
    pub fn threshold(&self, credit: Money) -> Money {
        credit
            .clamp_non_negative()
            .scale(self.regret_fraction * 0.5)
            .max(self.min_regret)
    }

    /// Decides whether to build `S` now.
    #[must_use]
    pub fn should_build(&self, regret: Money, credit: Money, build_cost: Money) -> bool {
        if regret < self.threshold(credit) {
            return false;
        }
        if self.conservative && credit < build_cost {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(x: f64) -> Money {
        Money::from_dollars(x)
    }

    #[test]
    fn threshold_is_fraction_of_credit() {
        let r = InvestmentRule::default();
        assert_eq!(
            r.threshold(m(100.0)),
            m(5.0),
            "round(x/(a·CR)) ≥ 1 at half a·CR"
        );
    }

    #[test]
    fn threshold_floored_by_min_regret() {
        let r = InvestmentRule::default();
        assert_eq!(r.threshold(Money::ZERO), m(0.001));
        assert_eq!(r.threshold(m(-50.0)), m(0.001), "debt clamps to zero");
    }

    #[test]
    fn builds_when_regret_and_funds_suffice() {
        let r = InvestmentRule::default();
        assert!(r.should_build(m(15.0), m(100.0), m(50.0)));
    }

    #[test]
    fn refuses_below_regret_threshold() {
        let r = InvestmentRule::default();
        assert!(!r.should_build(m(2.0), m(100.0), m(1.0)));
    }

    #[test]
    fn conservative_gate_blocks_underfunded_builds() {
        let r = InvestmentRule::default();
        assert!(!r.should_build(m(50.0), m(100.0), m(200.0)));
        let bold = InvestmentRule {
            conservative: false,
            ..r
        };
        assert!(bold.should_build(m(50.0), m(100.0), m(200.0)));
    }

    #[test]
    fn validation() {
        assert!(InvestmentRule::default().validate().is_ok());
        let bad = InvestmentRule {
            regret_fraction: 1.0,
            ..InvestmentRule::default()
        };
        assert!(bad.validate().is_err());
        let bad = InvestmentRule {
            regret_fraction: 0.0,
            ..InvestmentRule::default()
        };
        assert!(bad.validate().is_err());
        let bad = InvestmentRule {
            min_regret: m(-1.0),
            ..InvestmentRule::default()
        };
        assert!(bad.validate().is_err());
    }
}
