//! Amortisation horizons — eq. 7 and the paper's open problem.
//!
//! Eq. 7: `f_S(n, Build_S(S)) = Build_S(S) / n` — build cost is spread
//! equally over the next `n` queries that use the structure. The paper
//! notes that *"selecting n is a challenging problem in itself, as it
//! depends on the provider's risk aversion, arrival pattern of the
//! queries, and infrastructure costs. We intend to study this problem in
//! our future research."*
//!
//! We implement the paper's fixed-`n` policy and, as the promised
//! extension, an adaptive policy that sizes `n` to the number of queries
//! expected within a repayment window given the observed arrival rate —
//! fast workloads repay quickly with many small installments, slow ones
//! keep installments meaningful.

use serde::{Deserialize, Serialize};

/// How the amortisation horizon `n` of eq. 7 is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AmortizationPolicy {
    /// The paper's policy: a fixed `n` for every structure.
    Fixed(u64),
    /// Extension: `n = clamp(rate × window, lo, hi)` where `rate` is the
    /// observed query arrival rate (queries/second).
    Adaptive {
        /// Target repayment window in seconds.
        window_secs: f64,
        /// Lower clamp on `n`.
        min_n: u64,
        /// Upper clamp on `n`.
        max_n: u64,
    },
}

impl Default for AmortizationPolicy {
    fn default() -> Self {
        AmortizationPolicy::Fixed(2000)
    }
}

impl AmortizationPolicy {
    /// Resolves the horizon for a new structure given the observed
    /// arrival rate (queries per second; pass 0 if unknown).
    ///
    /// # Panics
    /// Panics if a fixed policy was built with `n == 0`.
    #[must_use]
    pub fn horizon(&self, arrival_rate_per_sec: f64) -> u64 {
        match *self {
            AmortizationPolicy::Fixed(n) => {
                assert!(n > 0, "fixed amortization horizon must be positive");
                n
            }
            AmortizationPolicy::Adaptive {
                window_secs,
                min_n,
                max_n,
            } => {
                let raw = (arrival_rate_per_sec * window_secs).round() as u64;
                raw.clamp(min_n.max(1), max_n.max(1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_ignores_rate() {
        let p = AmortizationPolicy::Fixed(500);
        assert_eq!(p.horizon(0.0), 500);
        assert_eq!(p.horizon(1000.0), 500);
    }

    #[test]
    fn adaptive_scales_with_rate() {
        let p = AmortizationPolicy::Adaptive {
            window_secs: 3600.0,
            min_n: 10,
            max_n: 10_000,
        };
        // 1 query/s over an hour window → 3600 uses.
        assert_eq!(p.horizon(1.0), 3600);
        // 1 query/min → 60.
        assert_eq!(p.horizon(1.0 / 60.0), 60);
    }

    #[test]
    fn adaptive_clamps() {
        let p = AmortizationPolicy::Adaptive {
            window_secs: 100.0,
            min_n: 50,
            max_n: 200,
        };
        assert_eq!(p.horizon(0.0), 50, "floor");
        assert_eq!(p.horizon(1e9), 200, "ceiling");
    }

    #[test]
    fn default_is_the_paper_fixed_policy() {
        assert_eq!(AmortizationPolicy::default().horizon(123.0), 2000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn fixed_zero_rejected() {
        let _ = AmortizationPolicy::Fixed(0).horizon(1.0);
    }
}
