//! The cloud account — an exactly balancing money ledger.
//!
//! Section IV-A of the paper: *"The cloud has an account where the user
//! payments for the query services they receive are deposited. Also, money
//! from this account are used in order to invest on new inventory."* The
//! overall credit is the paper's `CR`, the denominator of the investment
//! rule (eq. 3).

use pricing::Money;
use serde::{Deserialize, Serialize};

/// Categories of ledger movements, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LedgerEntry {
    /// User payment for a query service.
    QueryPayment,
    /// Initial working capital.
    InitialCredit,
    /// Spending on building a new structure (investment).
    Investment,
    /// Ongoing infrastructure expenditure (CPU uptime, disk rent,
    /// transfers) drawn from the account.
    Operating,
}

/// The cloud's money account. Balance (`CR`) = Σ deposits − Σ withdrawals,
/// exactly, in nano-dollars.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CloudAccount {
    balance: Money,
    deposited: Money,
    withdrawn: Money,
    payments: Money,
    investments: Money,
    operating: Money,
    payment_count: u64,
    investment_count: u64,
}

impl CloudAccount {
    /// Opens an account with the given working capital.
    ///
    /// # Panics
    /// Panics on negative initial credit.
    #[must_use]
    pub fn new(initial_credit: Money) -> Self {
        assert!(
            !initial_credit.is_negative(),
            "initial credit must be non-negative"
        );
        CloudAccount {
            balance: initial_credit,
            deposited: initial_credit,
            withdrawn: Money::ZERO,
            payments: Money::ZERO,
            investments: Money::ZERO,
            operating: Money::ZERO,
            payment_count: 0,
            investment_count: 0,
        }
    }

    /// The paper's `CR`: current credit.
    #[must_use]
    pub fn balance(&self) -> Money {
        self.balance
    }

    /// Total user payments received.
    #[must_use]
    pub fn total_payments(&self) -> Money {
        self.payments
    }

    /// Total invested in structures.
    #[must_use]
    pub fn total_investments(&self) -> Money {
        self.investments
    }

    /// Total operating expenditure drawn.
    #[must_use]
    pub fn total_operating(&self) -> Money {
        self.operating
    }

    /// Number of query payments recorded.
    #[must_use]
    pub fn payment_count(&self) -> u64 {
        self.payment_count
    }

    /// Number of investments recorded.
    #[must_use]
    pub fn investment_count(&self) -> u64 {
        self.investment_count
    }

    /// Deposits a user payment.
    ///
    /// # Panics
    /// Panics on negative amounts.
    pub fn deposit_payment(&mut self, amount: Money) {
        assert!(!amount.is_negative(), "payments cannot be negative");
        self.balance += amount;
        self.deposited += amount;
        self.payments += amount;
        self.payment_count += 1;
    }

    /// True if the account can fund `amount` right now.
    #[must_use]
    pub fn can_afford(&self, amount: Money) -> bool {
        self.balance >= amount
    }

    /// Withdraws an investment.
    ///
    /// # Errors
    /// Returns `Err(balance)` without mutating if funds are insufficient —
    /// the altruistic cloud never runs a deficit on investments.
    pub fn withdraw_investment(&mut self, amount: Money) -> Result<(), Money> {
        assert!(!amount.is_negative(), "investments cannot be negative");
        if self.balance < amount {
            return Err(self.balance);
        }
        self.balance -= amount;
        self.withdrawn += amount;
        self.investments += amount;
        self.investment_count += 1;
        Ok(())
    }

    /// Draws operating expenditure. Unlike investments, operating costs
    /// are incurred whether or not the account covers them (the balance
    /// may go negative — that is exactly the "unprofitable cloud" signal
    /// the experiments look for).
    ///
    /// # Panics
    /// Panics on negative amounts.
    pub fn draw_operating(&mut self, amount: Money) {
        assert!(!amount.is_negative(), "operating draw cannot be negative");
        self.balance -= amount;
        self.withdrawn += amount;
        self.operating += amount;
    }

    /// Ledger invariant: balance equals deposits minus withdrawals.
    #[must_use]
    pub fn balances_exactly(&self) -> bool {
        self.balance == self.deposited - self.withdrawn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(x: f64) -> Money {
        Money::from_dollars(x)
    }

    #[test]
    fn opens_with_initial_credit() {
        let a = CloudAccount::new(m(50.0));
        assert_eq!(a.balance(), m(50.0));
        assert!(a.balances_exactly());
    }

    #[test]
    fn deposits_and_withdrawals_balance() {
        let mut a = CloudAccount::new(m(10.0));
        a.deposit_payment(m(5.0));
        a.deposit_payment(m(2.5));
        a.withdraw_investment(m(7.0)).unwrap();
        a.draw_operating(m(3.0));
        assert_eq!(a.balance(), m(7.5));
        assert!(a.balances_exactly());
        assert_eq!(a.total_payments(), m(7.5));
        assert_eq!(a.total_investments(), m(7.0));
        assert_eq!(a.total_operating(), m(3.0));
        assert_eq!(a.payment_count(), 2);
        assert_eq!(a.investment_count(), 1);
    }

    #[test]
    fn investment_refused_when_underfunded() {
        let mut a = CloudAccount::new(m(1.0));
        let err = a.withdraw_investment(m(2.0)).unwrap_err();
        assert_eq!(err, m(1.0));
        assert_eq!(a.balance(), m(1.0), "refusal must not mutate");
        assert_eq!(a.investment_count(), 0);
    }

    #[test]
    fn operating_can_push_balance_negative() {
        let mut a = CloudAccount::new(m(1.0));
        a.draw_operating(m(5.0));
        assert_eq!(a.balance(), m(-4.0));
        assert!(a.balances_exactly());
        assert!(!a.can_afford(Money::ZERO.max(m(0.01))));
    }

    #[test]
    fn million_micropayments_balance_exactly() {
        let mut a = CloudAccount::new(Money::ZERO);
        let tick = Money::from_nanos(37);
        for _ in 0..1_000_000 {
            a.deposit_payment(tick);
        }
        assert_eq!(a.balance(), Money::from_nanos(37_000_000));
        assert!(a.balances_exactly());
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_payment_rejected() {
        CloudAccount::new(Money::ZERO).deposit_payment(m(-1.0));
    }
}
