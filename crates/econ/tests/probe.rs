//! Diagnostic probe (run with --ignored) to inspect the per-query economics.
use catalog::tpch::{tpch_schema, ScaleFactor};
use econ::budget::{BudgetFunction, BudgetShape};
use planner::enumerate::EnumerationOptions;
use planner::{enumerate_plans, generate_candidates, CostParams, Estimator, PlannerContext};
use pricing::PriceCatalog;
use simcore::{NetworkModel, SimTime};
use std::sync::Arc;
use workload::{paper_templates, WorkloadConfig, WorkloadGenerator};

#[test]
#[ignore = "diagnostic"]
fn probe() {
    let schema = Arc::new(tpch_schema(ScaleFactor(10.0)));
    let templates = paper_templates(&schema);
    let candidates = generate_candidates(&schema, &templates, 65);
    let cand_index = planner::CandidateIndex::build(&schema, &candidates);
    let estimator = Estimator::new(
        CostParams::default(),
        PriceCatalog::ec2_2009(),
        NetworkModel::paper_sdss(),
    );
    let ctx = PlannerContext {
        schema: &schema,
        candidates: &candidates,
        cand_index: &cand_index,
        estimator: &estimator,
    };
    let mut gen = WorkloadGenerator::new(Arc::clone(&schema), WorkloadConfig::default(), 2);
    let cache = cache::CacheState::new();
    for i in 0..5 {
        let q = gen.next_query();
        let plans = enumerate_plans(
            &ctx,
            &q,
            &cache,
            SimTime::from_secs(i as f64 + 1.0),
            EnumerationOptions::default(),
        );
        let backend = plans
            .iter()
            .find(|p| p.shape == planner::plan::PlanShape::Backend)
            .unwrap();
        let budget = BudgetFunction::of_shape(
            BudgetShape::Step,
            backend.price.scale(q.budget_scale),
            backend.exec_time * 2.0,
        );
        println!(
            "--- q{} template {} sel {:.2e} result {} bytes",
            i,
            q.template.0,
            q.driving().selectivity,
            q.result_bytes
        );
        println!(
            "budget: {} tmax {:.3}s",
            budget.value_at(simcore::SimDuration::ZERO),
            budget.t_max().as_secs()
        );
        for p in &plans {
            println!(
                "  {:?} time {:.3}s exec ${:.6} amort ${:.6} price ${:.6} missing {} build ${:.4}",
                p.shape,
                p.exec_time.as_secs(),
                p.exec_cost.as_dollars(),
                p.amortized_cost.as_dollars(),
                p.price.as_dollars(),
                p.missing.len(),
                p.build_cost.as_dollars()
            );
        }
    }
}

#[test]
#[ignore = "diagnostic"]
fn probe_manager() {
    let schema = Arc::new(tpch_schema(ScaleFactor(10.0)));
    let templates = paper_templates(&schema);
    let candidates = generate_candidates(&schema, &templates, 65);
    let cand_index = planner::CandidateIndex::build(&schema, &candidates);
    let estimator = Estimator::new(
        CostParams::default(),
        PriceCatalog::ec2_2009(),
        NetworkModel::paper_sdss(),
    );
    let ctx = PlannerContext {
        schema: &schema,
        candidates: &candidates,
        cand_index: &cand_index,
        estimator: &estimator,
    };
    let mut gen = WorkloadGenerator::new(Arc::clone(&schema), WorkloadConfig::default(), 2);
    let cfg = econ::EconConfig {
        initial_credit: pricing::Money::from_dollars(0.02),
        investment: econ::InvestmentRule {
            min_regret: pricing::Money::from_dollars(1e-5),
            ..econ::InvestmentRule::default()
        },
        ..econ::EconConfig::default()
    };
    let mut m = econ::EconomyManager::new(cfg);
    let mut builds = 0usize;
    for i in 0..2500 {
        let q = gen.next_query();
        let o = m.process_query(&ctx, &q, SimTime::from_secs((i + 1) as f64));
        builds += o.investments.len();
        if i % 250 == 0 {
            let bal = m.account().balance();
            let thr = m.config().investment.threshold(bal);
            let hits = builds; // reuse counter var for printing
            println!("q{i}: case {:?} cache={} balance ${:.4} threshold ${:.5} pool {} total_regret ${:.5} builds {hits} cached_structs {}",
                o.case, o.ran_in_cache, bal.as_dollars(), thr.as_dollars(), m.regret().len(), m.regret().total().as_dollars(), m.cache().len());
        }
    }
}

#[test]
#[ignore = "diagnostic"]
fn probe_top_regrets() {
    let schema = Arc::new(tpch_schema(ScaleFactor(10.0)));
    let templates = paper_templates(&schema);
    let candidates = generate_candidates(&schema, &templates, 65);
    let cand_index = planner::CandidateIndex::build(&schema, &candidates);
    let estimator = Estimator::new(
        CostParams::default(),
        PriceCatalog::ec2_2009(),
        NetworkModel::paper_sdss(),
    );
    let ctx = PlannerContext {
        schema: &schema,
        candidates: &candidates,
        cand_index: &cand_index,
        estimator: &estimator,
    };
    let mut gen = WorkloadGenerator::new(Arc::clone(&schema), WorkloadConfig::default(), 2);
    let cfg = econ::EconConfig {
        initial_credit: pricing::Money::from_dollars(0.02),
        investment: econ::InvestmentRule {
            min_regret: pricing::Money::from_dollars(1e-5),
            ..econ::InvestmentRule::default()
        },
        ..econ::EconConfig::default()
    };
    let mut m = econ::EconomyManager::new(cfg);
    for i in 0..400 {
        let q = gen.next_query();
        let _ = m.process_query(&ctx, &q, SimTime::from_secs((i + 1) as f64));
    }
    let bal = m.account().balance();
    println!(
        "balance ${:.4} threshold ${:.5}",
        bal.as_dollars(),
        m.config().investment.threshold(bal).as_dollars()
    );
    let tops = m.regret().over_threshold(pricing::Money::from_nanos(1));
    for (k, r) in tops.iter().take(12) {
        let cost = match k {
            cache::StructureKey::Column(c) => estimator.build_column(&schema, *c).0,
            cache::StructureKey::Index(id) => {
                estimator
                    .build_index(&schema, &candidates[id.index()], |_| false)
                    .0
            }
            cache::StructureKey::Node(_) => estimator.build_node().0,
        };
        println!(
            "{k}: regret ${:.5} build ${:.4}",
            r.as_dollars(),
            cost.as_dollars()
        );
    }
}

#[test]
#[ignore = "diagnostic"]
fn probe_late_plans() {
    let schema = Arc::new(tpch_schema(ScaleFactor(10.0)));
    let templates = paper_templates(&schema);
    let candidates = generate_candidates(&schema, &templates, 65);
    let cand_index = planner::CandidateIndex::build(&schema, &candidates);
    let estimator = Estimator::new(
        CostParams::default(),
        PriceCatalog::ec2_2009(),
        NetworkModel::paper_sdss(),
    );
    let ctx = PlannerContext {
        schema: &schema,
        candidates: &candidates,
        cand_index: &cand_index,
        estimator: &estimator,
    };
    let mut gen = WorkloadGenerator::new(Arc::clone(&schema), WorkloadConfig::default(), 2);
    let cfg = econ::EconConfig {
        initial_credit: pricing::Money::from_dollars(0.02),
        investment: econ::InvestmentRule {
            min_regret: pricing::Money::from_dollars(1e-5),
            ..econ::InvestmentRule::default()
        },
        ..econ::EconConfig::default()
    };
    let mut m = econ::EconomyManager::new(cfg);
    let mut cache_hits = 0;
    for i in 0..2500 {
        let q = gen.next_query();
        let now = SimTime::from_secs((i + 1) as f64);
        if i >= 2400 {
            let plans = enumerate_plans(&ctx, &q, m.cache(), now, EnumerationOptions::default());
            let nexist = plans.iter().filter(|p| p.is_existing()).count();
            let best_exist = plans
                .iter()
                .filter(|p| p.is_existing() && p.shape != planner::plan::PlanShape::Backend)
                .map(|p| p.price.as_dollars())
                .fold(f64::INFINITY, f64::min);
            let backend = plans
                .iter()
                .find(|p| p.shape == planner::plan::PlanShape::Backend)
                .unwrap();
            if i < 2420 {
                println!("q{i} t{} exist={} backend ${:.6} best_cache_exist ${:.6} missing_of_scan1: {:?}",
                q.template.0, nexist, backend.price.as_dollars(), best_exist,
                plans.iter().find(|p| matches!(&p.shape, planner::plan::PlanShape::Cache{indexes, nodes:1} if indexes.iter().all(Option::is_none))).map(|p| p.missing.len()));
            }
        }
        let o = m.process_query(&ctx, &q, now);
        if o.ran_in_cache {
            cache_hits += 1;
        }
    }
    println!("total cache hits: {cache_hits}");
}
