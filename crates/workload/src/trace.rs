//! Workload traces: record a generated query stream to a portable JSONL
//! form and replay it later.
//!
//! The paper's evaluation ran a fixed (unpublished) trace; this module is
//! how *this* reproduction's traces become shareable artifacts: a trace
//! file pins the exact query sequence independently of generator-version
//! drift, so two parties can compare schemes on byte-identical workloads.
//!
//! Format: one JSON object per line, each a [`TracedQuery`] — the query
//! plus its arrival instant. Plain `serde_json` lines keep the files
//! greppable and diffable.

use serde::{Deserialize, Serialize};
use simcore::SimTime;

use crate::query::Query;

/// One trace record: a query and when it arrived.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracedQuery {
    /// Arrival instant in seconds since simulation start.
    pub at_secs: f64,
    /// The query.
    pub query: Query,
}

/// An in-memory workload trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    records: Vec<TracedQuery>,
}

impl Trace {
    /// Empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one arrival.
    ///
    /// # Panics
    /// Panics if arrivals are appended out of time order.
    pub fn record(&mut self, at: SimTime, query: Query) {
        if let Some(last) = self.records.last() {
            assert!(
                at.as_secs() >= last.at_secs,
                "trace arrivals must be appended in time order"
            );
        }
        self.records.push(TracedQuery {
            at_secs: at.as_secs(),
            query,
        });
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in arrival order.
    #[must_use]
    pub fn records(&self) -> &[TracedQuery] {
        &self.records
    }

    /// Iterates `(arrival, query)` pairs for replay.
    pub fn replay(&self) -> impl Iterator<Item = (SimTime, &Query)> + '_ {
        self.records
            .iter()
            .map(|r| (SimTime::from_secs(r.at_secs), &r.query))
    }

    /// Serialises to JSONL.
    ///
    /// # Errors
    /// Propagates `serde_json` errors (none occur for well-formed data).
    pub fn to_jsonl(&self) -> Result<String, serde_json::Error> {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&serde_json::to_string(r)?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Parses a JSONL trace.
    ///
    /// # Errors
    /// Returns the line number (1-based) and parse error for the first
    /// malformed line, or a message if arrivals are out of order.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut trace = Trace::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record: TracedQuery =
                serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            if let Some(last) = trace.records.last() {
                if record.at_secs < last.at_secs {
                    return Err(format!("line {}: arrival goes backwards", i + 1));
                }
            }
            trace.records.push(record);
        }
        Ok(trace)
    }

    /// Captures `n` queries from a generator with the given arrival gaps.
    pub fn capture<A>(
        generator: &mut crate::generator::WorkloadGenerator,
        arrivals: &mut A,
        rng: &mut simcore::SimRng,
        n: usize,
    ) -> Self
    where
        A: simcore::arrival::ArrivalProcess + ?Sized,
    {
        let mut trace = Trace::new();
        for _ in 0..n {
            let Some(at) = arrivals.next_arrival(rng) else {
                break;
            };
            trace.record(at, generator.next_query());
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::tpch::{tpch_schema, ScaleFactor};
    use simcore::arrival::FixedInterval;
    use simcore::{SimDuration, SimRng};
    use std::sync::Arc;

    use crate::generator::{WorkloadConfig, WorkloadGenerator};

    fn capture(n: usize) -> Trace {
        let schema = Arc::new(tpch_schema(ScaleFactor(1.0)));
        let mut gen = WorkloadGenerator::new(schema, WorkloadConfig::default(), 77);
        let mut arrivals = FixedInterval::new(SimDuration::from_secs(2.0));
        let mut rng = SimRng::new(1);
        Trace::capture(&mut gen, &mut arrivals, &mut rng, n)
    }

    #[test]
    fn capture_records_in_order() {
        let t = capture(25);
        assert_eq!(t.len(), 25);
        assert!(!t.is_empty());
        let times: Vec<f64> = t.records().iter().map(|r| r.at_secs).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(times[0], 2.0);
        assert_eq!(times[24], 50.0);
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let t = capture(40);
        let text = t.to_jsonl().unwrap();
        assert_eq!(text.lines().count(), 40);
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn replay_yields_same_queries() {
        let t = capture(10);
        let replayed: Vec<_> = t.replay().collect();
        assert_eq!(replayed.len(), 10);
        assert_eq!(replayed[3].0.as_secs(), 8.0);
        assert_eq!(replayed[3].1, &t.records()[3].query);
    }

    #[test]
    fn malformed_lines_report_position() {
        let t = capture(2);
        let mut text = t.to_jsonl().unwrap();
        text.push_str("{not json}\n");
        let err = Trace::from_jsonl(&text).unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
    }

    #[test]
    fn out_of_order_jsonl_rejected() {
        let t = capture(2);
        let text = t.to_jsonl().unwrap();
        let lines: Vec<&str> = text.lines().rev().collect();
        let reversed = lines.join("\n");
        let err = Trace::from_jsonl(&reversed).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn blank_lines_ignored() {
        let t = capture(3);
        let text = format!("\n{}\n\n", t.to_jsonl().unwrap());
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_record_panics() {
        let mut t = capture(2);
        let q = t.records()[0].query.clone();
        t.record(SimTime::from_secs(0.5), q);
    }
}
