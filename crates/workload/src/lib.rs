//! # workload — the paper's TPC-H/SDSS query workload
//!
//! Section VII-A of the paper: *"The cache is operated under a TPCH-based
//! workload, which consists of 7 TPCH query templates and simulates the
//! query evolution of a million SDSS-like queries against a 2.5 TB back-end
//! database."* That trace was never published, so this crate generates a
//! synthetic equivalent with the same knobs Section VI says the economy is
//! sensitive to:
//!
//! * **data-access locality** — queries concentrate on a Zipf-hot subset of
//!   data regions and on the small set of columns the 7 templates touch
//!   ([`locality`]);
//! * **temporal locality / query evolution** — template popularity drifts
//!   over time as a random walk, which is what forces econ-cheap to evict
//!   and rebuild indexes at long inter-arrival times ([`evolution`]);
//! * **result-heavy queries** — per-template result models produce multi-MB
//!   results so that backend execution pays real bandwidth ([`templates`]).
//!
//! [`generator::WorkloadGenerator`] is a deterministic
//! `Iterator<Item = Query>` given a seed.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod evolution;
pub mod generator;
pub mod locality;
pub mod query;
pub mod templates;
pub mod trace;

pub use arrivals::{DiurnalSinusoid, MarkovModulated, SurgeOverlay};
pub use generator::{WorkloadConfig, WorkloadGenerator};
pub use query::{Query, QueryId, TableAccess};
pub use templates::{paper_templates, ResolvedTemplate, TemplateId};
pub use trace::{Trace, TracedQuery};
