//! Non-stationary arrival processes for elasticity experiments.
//!
//! The paper's grid uses deterministic fixed-interval arrivals
//! (`simcore::arrival::FixedInterval`); its economy nonetheless prices
//! *elasticity* — extra CPU nodes at `c` $/s (eq. 11) and capital
//! investment when accrued regret justifies a build (eq. 3). An elastic
//! fleet control plane only has something to react to when load
//! genuinely varies, so this module adds the two canonical
//! non-stationary shapes:
//!
//! * [`MarkovModulated`] — a 2-state MMPP: Poisson arrivals whose rate
//!   switches between a *calm* and a *storm* state with exponentially
//!   distributed sojourn times. Unlike `OnOffBursty` (bursts of a
//!   geometric query count), the modulating chain is independent of the
//!   arrival count, so storms deliver however many queries fit their
//!   duration — the textbook bursty-traffic model.
//! * [`DiurnalSinusoid`] — an inhomogeneous Poisson process whose rate
//!   follows `λ(t) = λ̄ · (1 + a·sin(2πt/period + φ))`, sampled by
//!   Lewis–Shedler thinning against the peak rate. Models the
//!   day/night demand cycle a long-running cache fleet sees.
//!
//! Both implement [`ArrivalProcess`], are monotone, and are pure
//! functions of their parameters and the caller's `SimRng` — fleet
//! determinism (shard- and pool-count invariance) is preserved.

use simcore::arrival::ArrivalProcess;
use simcore::{SimDuration, SimRng, SimTime};

/// A two-state Markov-modulated Poisson process.
///
/// The hidden chain alternates *calm* and *storm* states; sojourn times
/// are exponential with the given means, and within a state arrivals are
/// Poisson with that state's mean gap. The chain starts calm.
#[derive(Debug, Clone)]
pub struct MarkovModulated {
    calm_gap: f64,
    storm_gap: f64,
    calm_sojourn: f64,
    storm_sojourn: f64,
    /// Simulation clock of the process.
    now: f64,
    /// End of the current state's sojourn.
    state_until: f64,
    in_storm: bool,
}

impl MarkovModulated {
    /// Creates the process.
    ///
    /// * `calm_gap_secs` / `storm_gap_secs` — mean inter-arrival gap in
    ///   the calm / storm state (storms are usually much denser);
    /// * `calm_sojourn_secs` / `storm_sojourn_secs` — mean state
    ///   duration.
    ///
    /// # Panics
    /// Panics if any parameter is not strictly positive and finite.
    #[must_use]
    pub fn new(
        calm_gap_secs: f64,
        storm_gap_secs: f64,
        calm_sojourn_secs: f64,
        storm_sojourn_secs: f64,
    ) -> Self {
        for (name, v) in [
            ("calm_gap_secs", calm_gap_secs),
            ("storm_gap_secs", storm_gap_secs),
            ("calm_sojourn_secs", calm_sojourn_secs),
            ("storm_sojourn_secs", storm_sojourn_secs),
        ] {
            assert!(v.is_finite() && v > 0.0, "{name} must be positive");
        }
        MarkovModulated {
            calm_gap: calm_gap_secs,
            storm_gap: storm_gap_secs,
            calm_sojourn: calm_sojourn_secs,
            storm_sojourn: storm_sojourn_secs,
            now: 0.0,
            // The first calm sojourn is drawn lazily on the first
            // arrival so construction needs no RNG.
            state_until: -1.0,
            in_storm: false,
        }
    }

    fn exp(mean: f64, rng: &mut SimRng) -> f64 {
        -mean * rng.next_f64_open().ln()
    }
}

impl ArrivalProcess for MarkovModulated {
    fn next_arrival(&mut self, rng: &mut SimRng) -> Option<SimTime> {
        if self.state_until < 0.0 {
            self.state_until = Self::exp(self.calm_sojourn, rng);
        }
        loop {
            let gap_mean = if self.in_storm {
                self.storm_gap
            } else {
                self.calm_gap
            };
            let candidate = self.now + Self::exp(gap_mean, rng);
            if candidate <= self.state_until {
                self.now = candidate;
                return Some(SimTime::from_secs(self.now));
            }
            // The state flipped before the candidate arrival; restart the
            // (memoryless) gap from the switch instant in the new state.
            self.now = self.state_until;
            self.in_storm = !self.in_storm;
            let sojourn = if self.in_storm {
                self.storm_sojourn
            } else {
                self.calm_sojourn
            };
            self.state_until = self.now + Self::exp(sojourn, rng);
        }
    }
}

/// An inhomogeneous Poisson process with a sinusoidal (diurnal) rate.
///
/// `λ(t) = λ̄ · (1 + a · sin(2πt/period + φ))` with `λ̄ = 1/mean_gap`,
/// sampled by Lewis–Shedler thinning against the peak rate
/// `λ̄ · (1 + a)`: homogeneous candidates at the peak rate are accepted
/// with probability `λ(t)/λ_peak`. Exact, monotone, and allocation-free.
#[derive(Debug, Clone)]
pub struct DiurnalSinusoid {
    mean_rate: f64,
    amplitude: f64,
    period: f64,
    phase: f64,
    now: f64,
}

impl DiurnalSinusoid {
    /// Creates the process.
    ///
    /// * `mean_gap_secs` — mean inter-arrival gap averaged over a period;
    /// * `amplitude` — relative swing in `[0, 1)` (0.8 ⇒ the peak rate is
    ///   9× the trough rate);
    /// * `period_secs` — cycle length ("day" duration);
    /// * `phase` — radians offset (0 starts mid-ramp, `-π/2` at trough).
    ///
    /// # Panics
    /// Panics if `mean_gap_secs` or `period_secs` is not strictly
    /// positive and finite, or if `amplitude` is outside `[0, 1)`.
    #[must_use]
    pub fn new(mean_gap_secs: f64, amplitude: f64, period_secs: f64, phase: f64) -> Self {
        assert!(
            mean_gap_secs.is_finite() && mean_gap_secs > 0.0,
            "mean_gap_secs must be positive"
        );
        assert!(
            period_secs.is_finite() && period_secs > 0.0,
            "period_secs must be positive"
        );
        assert!(
            (0.0..1.0).contains(&amplitude),
            "amplitude must be in [0, 1)"
        );
        assert!(phase.is_finite(), "phase must be finite");
        DiurnalSinusoid {
            mean_rate: 1.0 / mean_gap_secs,
            amplitude,
            period: period_secs,
            phase,
            now: 0.0,
        }
    }

    /// Instantaneous rate at `t` seconds.
    #[must_use]
    pub fn rate_at(&self, t: f64) -> f64 {
        self.mean_rate
            * (1.0 + self.amplitude * (std::f64::consts::TAU * t / self.period + self.phase).sin())
    }
}

impl ArrivalProcess for DiurnalSinusoid {
    fn next_arrival(&mut self, rng: &mut SimRng) -> Option<SimTime> {
        let peak = self.mean_rate * (1.0 + self.amplitude);
        loop {
            // Homogeneous candidate at the peak rate…
            self.now += -rng.next_f64_open().ln() / peak;
            // …thinned down to the instantaneous rate.
            if rng.next_f64() * peak <= self.rate_at(self.now) {
                return Some(SimTime::from_secs(self.now));
            }
        }
    }

    fn mean_gap(&self) -> Option<SimDuration> {
        Some(SimDuration::from_secs(1.0 / self.mean_rate))
    }
}

/// A flash-crowd overlay: time-warps an inner arrival process so that
/// inside each surge window its arrivals land `boost`× denser.
///
/// The overlay treats the inner process's inter-arrival gaps as *work*
/// consumed at speed 1 outside surge windows and speed `boost` inside
/// them: a gap of `g` seconds spanning a surge burns through `boost`
/// overlay-seconds of it per wall second, so the same underlying
/// arrival sequence compresses inside the window and resumes its
/// native cadence outside. The mapping is piecewise-linear, exact,
/// strictly monotone, and a pure function of the inner process and the
/// caller's `SimRng` — fleet determinism is preserved, and the inner
/// process draws exactly the same random sequence it would undecorated.
pub struct SurgeOverlay {
    inner: Box<dyn ArrivalProcess>,
    /// Sorted, non-overlapping `(start, end, boost)` windows in overlay
    /// (output) time.
    windows: Vec<(f64, f64, f64)>,
    /// Last absolute arrival time emitted by the inner process.
    inner_prev: f64,
    /// Overlay clock (last emitted arrival time).
    now: f64,
}

impl std::fmt::Debug for SurgeOverlay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SurgeOverlay")
            .field("windows", &self.windows)
            .field("inner_prev", &self.inner_prev)
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl SurgeOverlay {
    /// Wraps `inner` with surge `windows` of `(start_secs, end_secs,
    /// boost)` in output time.
    ///
    /// # Panics
    /// Panics if any window is empty or non-finite, any boost is below
    /// 1, or the windows are not sorted and disjoint.
    #[must_use]
    pub fn new(inner: Box<dyn ArrivalProcess>, windows: Vec<(f64, f64, f64)>) -> Self {
        let mut prev_end = 0.0_f64;
        for &(start, end, boost) in &windows {
            assert!(
                start.is_finite() && end.is_finite() && start >= 0.0 && start < end,
                "surge window [{start}, {end}) must be non-empty and finite"
            );
            assert!(
                boost.is_finite() && boost >= 1.0,
                "surge boost {boost} must be at least 1"
            );
            assert!(
                start >= prev_end,
                "surge windows must be sorted and disjoint ({start} < {prev_end})"
            );
            prev_end = end;
        }
        SurgeOverlay {
            inner,
            windows,
            inner_prev: 0.0,
            now: 0.0,
        }
    }

    /// Speed at overlay instant `t` and the next boundary where it
    /// changes (`f64::INFINITY` past the last window).
    fn speed_and_boundary(&self, t: f64) -> (f64, f64) {
        for &(start, end, boost) in &self.windows {
            if t < start {
                return (1.0, start);
            }
            if t < end {
                return (boost, end);
            }
        }
        (1.0, f64::INFINITY)
    }
}

impl ArrivalProcess for SurgeOverlay {
    fn next_arrival(&mut self, rng: &mut SimRng) -> Option<SimTime> {
        let next = self.inner.next_arrival(rng)?.as_secs();
        // Inner gaps are defined on the inner clock; consume this one on
        // the overlay clock, piecewise per speed region.
        let mut gap = next - self.inner_prev;
        self.inner_prev = next;
        loop {
            let (speed, boundary) = self.speed_and_boundary(self.now);
            let consumable = (boundary - self.now) * speed;
            if consumable >= gap {
                self.now += gap / speed;
                return Some(SimTime::from_secs(self.now));
            }
            gap -= consumable;
            self.now = boundary;
        }
    }

    fn mean_gap(&self) -> Option<SimDuration> {
        // Surges are transient; the long-run mean is the inner one.
        self.inner.mean_gap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaps(p: &mut dyn ArrivalProcess, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::new(seed);
        let mut last = SimTime::ZERO;
        (0..n)
            .map(|_| {
                let at = p.next_arrival(&mut rng).expect("never exhausts");
                let gap = (at - last).as_secs();
                last = at;
                gap
            })
            .collect()
    }

    #[test]
    fn mmpp_is_monotone_and_bimodal() {
        let mut p = MarkovModulated::new(10.0, 0.2, 120.0, 30.0);
        let gaps = gaps(&mut p, 4000, 11);
        assert!(gaps.iter().all(|&g| g >= 0.0));
        let dense = gaps.iter().filter(|&&g| g < 1.0).count();
        let sparse = gaps.iter().filter(|&&g| g > 3.0).count();
        assert!(dense > 500, "expected storm arrivals, saw {dense}");
        assert!(sparse > 200, "expected calm arrivals, saw {sparse}");
    }

    #[test]
    fn mmpp_is_deterministic_per_seed() {
        let mut a = MarkovModulated::new(5.0, 0.1, 60.0, 20.0);
        let mut b = MarkovModulated::new(5.0, 0.1, 60.0, 20.0);
        assert_eq!(gaps(&mut a, 500, 3), gaps(&mut b, 500, 3));
        assert_ne!(gaps(&mut a, 500, 4), gaps(&mut b, 500, 5));
    }

    #[test]
    fn diurnal_mean_rate_converges_over_whole_periods() {
        let mut p = DiurnalSinusoid::new(2.0, 0.8, 500.0, 0.0);
        let mut rng = SimRng::new(7);
        let mut count = 0u64;
        let mut last = 0.0;
        // Count arrivals over many whole periods: the sinusoid averages
        // out and the empirical rate must approach 1/mean_gap.
        while last < 50_000.0 {
            last = p.next_arrival(&mut rng).unwrap().as_secs();
            count += 1;
        }
        let rate = count as f64 / last;
        assert!((rate - 0.5).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn diurnal_peaks_and_troughs_differ() {
        let period = 1000.0;
        // Phase -π/2: troughs at t ≡ 0, peaks at t ≡ period/2 (mod period).
        let mut p = DiurnalSinusoid::new(1.0, 0.9, period, -std::f64::consts::FRAC_PI_2);
        let mut rng = SimRng::new(13);
        let mut peak_halves = 0u64;
        let mut trough_halves = 0u64;
        while let Some(at) = p.next_arrival(&mut rng) {
            let t = at.as_secs();
            if t > 20.0 * period {
                break;
            }
            let pos = (t / period).fract();
            if (0.25..0.75).contains(&pos) {
                peak_halves += 1;
            } else {
                trough_halves += 1;
            }
        }
        assert!(
            peak_halves > 3 * trough_halves,
            "peak half {peak_halves} vs trough half {trough_halves}"
        );
    }

    #[test]
    fn diurnal_rate_at_matches_the_formula() {
        let p = DiurnalSinusoid::new(2.0, 0.5, 100.0, 0.0);
        assert!((p.rate_at(0.0) - 0.5).abs() < 1e-12);
        assert!((p.rate_at(25.0) - 0.75).abs() < 1e-12);
        assert!((p.rate_at(75.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn diurnal_rejects_full_amplitude() {
        let _ = DiurnalSinusoid::new(1.0, 1.0, 10.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "storm_gap_secs")]
    fn mmpp_rejects_nonpositive_gaps() {
        let _ = MarkovModulated::new(1.0, 0.0, 10.0, 10.0);
    }

    #[test]
    fn surge_compresses_exactly_by_boost() {
        // Fixed 1 s gaps, one 4× surge over [10, 15): the 20 underlying
        // seconds [0, 20) map to 10 s outside the window at speed 1 plus
        // (20 − 10) / 4 = 2.5 s… walk the exact piecewise map instead.
        let inner = Box::new(simcore::arrival::FixedInterval::new(
            SimDuration::from_secs(1.0),
        ));
        let mut p = SurgeOverlay::new(inner, vec![(10.0, 15.0, 4.0)]);
        let mut rng = SimRng::new(1);
        let times: Vec<f64> = (0..40)
            .map(|_| p.next_arrival(&mut rng).unwrap().as_secs())
            .collect();
        // Before the window the map is the identity.
        assert_eq!(
            &times[..10],
            &(1..=10).map(f64::from).collect::<Vec<_>>()[..]
        );
        // Inside [10, 15) gaps shrink to 1/4 s: 20 underlying arrivals
        // (t = 11..=30) fit the 5-second window.
        assert!((times[10] - 10.25).abs() < 1e-12);
        assert!((times[29] - 15.0).abs() < 1e-12);
        // Past the window the cadence resumes at 1 s per arrival.
        assert!((times[30] - 16.0).abs() < 1e-12);
        assert!((times[39] - 25.0).abs() < 1e-12);
    }

    #[test]
    fn surge_overlay_is_monotone_and_deterministic() {
        let make = || {
            SurgeOverlay::new(
                Box::new(MarkovModulated::new(5.0, 0.1, 60.0, 20.0)),
                vec![(30.0, 60.0, 3.0), (200.0, 220.0, 8.0)],
            )
        };
        let mut a = make();
        let mut b = make();
        let ga = gaps(&mut a, 800, 9);
        assert!(ga.iter().all(|&g| g >= 0.0));
        assert_eq!(ga, gaps(&mut b, 800, 9));
    }

    #[test]
    fn surge_with_no_windows_is_the_identity() {
        let mut plain = MarkovModulated::new(5.0, 0.1, 60.0, 20.0);
        let mut wrapped =
            SurgeOverlay::new(Box::new(MarkovModulated::new(5.0, 0.1, 60.0, 20.0)), vec![]);
        assert_eq!(gaps(&mut plain, 400, 21), gaps(&mut wrapped, 400, 21));
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn surge_rejects_overlapping_windows() {
        let _ = SurgeOverlay::new(
            Box::new(MarkovModulated::new(5.0, 0.1, 60.0, 20.0)),
            vec![(0.0, 10.0, 2.0), (5.0, 20.0, 2.0)],
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn surge_rejects_sub_unit_boost() {
        let _ = SurgeOverlay::new(
            Box::new(MarkovModulated::new(5.0, 0.1, 60.0, 20.0)),
            vec![(0.0, 10.0, 0.5)],
        );
    }
}
