//! The seven TPC-H query templates of the paper's workload.
//!
//! The paper reuses the workload of Malik et al. (SMDB 2008) — "7 TPCH
//! query templates". The concrete seven are not listed, so we pick the
//! seven whose access patterns span the interesting regimes for a column
//! cache (heavy scan, selective range, multi-way join, large result):
//! Q1, Q3, Q5, Q6, Q10, Q14 and Q18 — a standard choice for cache studies.
//!
//! A template records *which columns* each table contributes, *which
//! predicates* are sargable (indexable), how instance selectivity is drawn,
//! and how result size is derived. Selectivity ranges are tuned so result
//! sizes land in the multi-megabyte "result heavy" regime the paper's
//! Section VI calls out for SDSS-like workloads.

use catalog::{ColumnId, Schema};
use serde::{Deserialize, Serialize};

/// Index of a template within the workload's template set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TemplateId(pub usize);

/// Declarative table access of a template (column names are qualified).
#[derive(Debug, Clone)]
pub struct AccessSpec {
    /// Table name.
    pub table: &'static str,
    /// Columns always read.
    pub required: &'static [&'static str],
    /// Columns read by some instances only (projection variability keeps
    /// column-caching decisions non-trivial).
    pub optional: &'static [&'static str],
    /// Columns carrying sargable predicates.
    pub predicates: &'static [&'static str],
    /// Local selectivity = driving selectivity × this factor (min 1.0 cap).
    pub selectivity_factor: f64,
}

/// Declarative template.
#[derive(Debug, Clone)]
pub struct TemplateSpec {
    /// Template name, e.g. `"q6_forecast_revenue"`.
    pub name: &'static str,
    /// Table accesses; first is the driving table.
    pub accesses: &'static [AccessSpec],
    /// ORDER BY / GROUP BY columns (qualified).
    pub sort_columns: &'static [&'static str],
    /// Driving-table selectivity is drawn log-uniform from
    /// `10^lo ..= 10^hi`.
    pub sel_log10_range: (f64, f64),
    /// Result rows = driving rows × selectivity × fanout, capped below.
    pub result_fanout: f64,
    /// Hard cap on result rows (aggregation templates return few rows).
    pub result_rows_cap: u64,
    /// Bytes per result row.
    pub result_row_width: u64,
}

/// A template with its column names resolved against a schema.
#[derive(Debug, Clone)]
pub struct ResolvedTemplate {
    /// Position in the template set.
    pub id: TemplateId,
    /// Template name.
    pub name: String,
    /// Resolved accesses: (table id, required cols, optional cols,
    /// predicate cols, selectivity factor).
    pub accesses: Vec<ResolvedAccess>,
    /// Resolved sort columns.
    pub sort_columns: Vec<ColumnId>,
    /// Log-uniform selectivity exponent range.
    pub sel_log10_range: (f64, f64),
    /// Result-size model.
    pub result_fanout: f64,
    /// Cap on result rows.
    pub result_rows_cap: u64,
    /// Bytes per result row.
    pub result_row_width: u64,
}

/// Resolved per-table access.
#[derive(Debug, Clone)]
pub struct ResolvedAccess {
    /// Table id.
    pub table: catalog::TableId,
    /// Always-read columns.
    pub required: Vec<ColumnId>,
    /// Sometimes-read columns.
    pub optional: Vec<ColumnId>,
    /// Sargable predicate columns.
    pub predicates: Vec<ColumnId>,
    /// Local selectivity factor relative to driving selectivity.
    pub selectivity_factor: f64,
}

/// The seven specs (TPC-H Q1, Q3, Q5, Q6, Q10, Q14, Q18).
#[must_use]
pub fn paper_template_specs() -> Vec<TemplateSpec> {
    vec![
        TemplateSpec {
            // Q1: pricing summary report — wide lineitem scan, tiny result.
            name: "q1_pricing_summary",
            accesses: &[AccessSpec {
                table: "lineitem",
                required: &[
                    "lineitem.l_returnflag",
                    "lineitem.l_linestatus",
                    "lineitem.l_quantity",
                    "lineitem.l_extendedprice",
                    "lineitem.l_discount",
                    "lineitem.l_shipdate",
                ],
                optional: &["lineitem.l_tax"],
                predicates: &["lineitem.l_shipdate"],
                selectivity_factor: 1.0,
            }],
            sort_columns: &["lineitem.l_returnflag", "lineitem.l_linestatus"],
            sel_log10_range: (-4.2, -3.2),
            result_fanout: 1.0,
            result_rows_cap: 6,
            result_row_width: 200,
        },
        TemplateSpec {
            // Q3: shipping priority — customer ⋈ orders ⋈ lineitem.
            name: "q3_shipping_priority",
            accesses: &[
                AccessSpec {
                    table: "lineitem",
                    required: &[
                        "lineitem.l_orderkey",
                        "lineitem.l_extendedprice",
                        "lineitem.l_discount",
                        "lineitem.l_shipdate",
                    ],
                    optional: &[],
                    predicates: &["lineitem.l_shipdate"],
                    selectivity_factor: 1.0,
                },
                AccessSpec {
                    table: "orders",
                    required: &[
                        "orders.o_orderkey",
                        "orders.o_orderdate",
                        "orders.o_shippriority",
                    ],
                    optional: &["orders.o_custkey"],
                    predicates: &["orders.o_orderdate"],
                    selectivity_factor: 2.0,
                },
                AccessSpec {
                    table: "customer",
                    required: &["customer.c_custkey", "customer.c_mktsegment"],
                    optional: &[],
                    predicates: &["customer.c_mktsegment"],
                    selectivity_factor: 20.0,
                },
            ],
            sort_columns: &["orders.o_orderdate"],
            sel_log10_range: (-5.0, -3.8),
            result_fanout: 4.0,
            result_rows_cap: 500_000,
            result_row_width: 44,
        },
        TemplateSpec {
            // Q5: local supplier volume — 6-way join, grouped result.
            name: "q5_local_supplier",
            accesses: &[
                AccessSpec {
                    table: "lineitem",
                    required: &[
                        "lineitem.l_orderkey",
                        "lineitem.l_suppkey",
                        "lineitem.l_extendedprice",
                        "lineitem.l_discount",
                    ],
                    optional: &[],
                    predicates: &[],
                    selectivity_factor: 1.0,
                },
                AccessSpec {
                    table: "orders",
                    required: &["orders.o_orderkey", "orders.o_orderdate"],
                    optional: &["orders.o_custkey"],
                    predicates: &["orders.o_orderdate"],
                    selectivity_factor: 1.0,
                },
                AccessSpec {
                    table: "supplier",
                    required: &["supplier.s_suppkey", "supplier.s_nationkey"],
                    optional: &[],
                    predicates: &[],
                    selectivity_factor: 200.0,
                },
                AccessSpec {
                    table: "nation",
                    required: &["nation.n_nationkey", "nation.n_name", "nation.n_regionkey"],
                    optional: &[],
                    predicates: &["nation.n_regionkey"],
                    selectivity_factor: 1e9, // tiny table: effectively 20%
                },
            ],
            sort_columns: &["nation.n_name"],
            sel_log10_range: (-4.5, -3.5),
            result_fanout: 1.0,
            result_rows_cap: 25,
            result_row_width: 60,
        },
        TemplateSpec {
            // Q6: forecasting revenue change — selective scan, 1-row result.
            name: "q6_forecast_revenue",
            accesses: &[AccessSpec {
                table: "lineitem",
                required: &[
                    "lineitem.l_extendedprice",
                    "lineitem.l_discount",
                    "lineitem.l_quantity",
                    "lineitem.l_shipdate",
                ],
                optional: &[],
                predicates: &["lineitem.l_shipdate", "lineitem.l_discount"],
                selectivity_factor: 1.0,
            }],
            sort_columns: &[],
            sel_log10_range: (-4.5, -3.5),
            result_fanout: 1.0,
            result_rows_cap: 1,
            result_row_width: 16,
        },
        TemplateSpec {
            // Q10: returned item reporting — big join, result-heavy.
            name: "q10_returned_items",
            accesses: &[
                AccessSpec {
                    table: "lineitem",
                    required: &[
                        "lineitem.l_orderkey",
                        "lineitem.l_returnflag",
                        "lineitem.l_extendedprice",
                        "lineitem.l_discount",
                    ],
                    optional: &[],
                    predicates: &["lineitem.l_returnflag"],
                    selectivity_factor: 1.0,
                },
                AccessSpec {
                    table: "orders",
                    required: &[
                        "orders.o_orderkey",
                        "orders.o_custkey",
                        "orders.o_orderdate",
                    ],
                    optional: &[],
                    predicates: &["orders.o_orderdate"],
                    selectivity_factor: 3.0,
                },
                AccessSpec {
                    table: "customer",
                    required: &[
                        "customer.c_custkey",
                        "customer.c_name",
                        "customer.c_acctbal",
                        "customer.c_nationkey",
                    ],
                    optional: &[
                        "customer.c_phone",
                        "customer.c_address",
                        "customer.c_comment",
                    ],
                    predicates: &[],
                    selectivity_factor: 50.0,
                },
            ],
            sort_columns: &["customer.c_acctbal"],
            sel_log10_range: (-4.8, -3.6),
            result_fanout: 8.0,
            result_rows_cap: 300_000,
            result_row_width: 175,
        },
        TemplateSpec {
            // Q14: promotion effect — lineitem ⋈ part over one month.
            name: "q14_promotion_effect",
            accesses: &[
                AccessSpec {
                    table: "lineitem",
                    required: &[
                        "lineitem.l_partkey",
                        "lineitem.l_extendedprice",
                        "lineitem.l_discount",
                        "lineitem.l_shipdate",
                    ],
                    optional: &[],
                    predicates: &["lineitem.l_shipdate"],
                    selectivity_factor: 1.0,
                },
                AccessSpec {
                    table: "part",
                    required: &["part.p_partkey", "part.p_type"],
                    optional: &[],
                    predicates: &[],
                    selectivity_factor: 30.0,
                },
            ],
            sort_columns: &[],
            sel_log10_range: (-4.2, -3.4),
            result_fanout: 1.0,
            result_rows_cap: 1,
            result_row_width: 16,
        },
        TemplateSpec {
            // Q18: large-volume customers — join + HAVING, sizable result.
            name: "q18_large_customers",
            accesses: &[
                AccessSpec {
                    table: "lineitem",
                    required: &["lineitem.l_orderkey", "lineitem.l_quantity"],
                    optional: &[],
                    predicates: &["lineitem.l_quantity"],
                    selectivity_factor: 1.0,
                },
                AccessSpec {
                    table: "orders",
                    required: &[
                        "orders.o_orderkey",
                        "orders.o_custkey",
                        "orders.o_orderdate",
                        "orders.o_totalprice",
                    ],
                    optional: &[],
                    predicates: &[],
                    selectivity_factor: 2.0,
                },
                AccessSpec {
                    table: "customer",
                    required: &["customer.c_custkey", "customer.c_name"],
                    optional: &[],
                    predicates: &[],
                    selectivity_factor: 40.0,
                },
            ],
            sort_columns: &["orders.o_totalprice", "orders.o_orderdate"],
            sel_log10_range: (-5.2, -4.0),
            result_fanout: 6.0,
            result_rows_cap: 200_000,
            result_row_width: 70,
        },
    ]
}

/// Resolves the seven specs against a schema.
///
/// # Panics
/// Panics if the schema is missing any referenced table or column (i.e. it
/// is not a TPC-H schema from [`catalog::tpch`]).
#[must_use]
pub fn paper_templates(schema: &Schema) -> Vec<ResolvedTemplate> {
    paper_template_specs()
        .into_iter()
        .enumerate()
        .map(|(i, spec)| resolve(schema, TemplateId(i), &spec))
        .collect()
}

fn resolve_cols(schema: &Schema, names: &[&str]) -> Vec<ColumnId> {
    names
        .iter()
        .map(|q| {
            schema
                .column_by_name(q)
                .unwrap_or_else(|| panic!("schema is missing column `{q}`"))
                .id
        })
        .collect()
}

fn resolve(schema: &Schema, id: TemplateId, spec: &TemplateSpec) -> ResolvedTemplate {
    let accesses = spec
        .accesses
        .iter()
        .map(|a| ResolvedAccess {
            table: schema
                .table_by_name(a.table)
                .unwrap_or_else(|| panic!("schema is missing table `{}`", a.table))
                .id,
            required: resolve_cols(schema, a.required),
            optional: resolve_cols(schema, a.optional),
            predicates: resolve_cols(schema, a.predicates),
            selectivity_factor: a.selectivity_factor,
        })
        .collect();
    ResolvedTemplate {
        id,
        name: spec.name.to_owned(),
        accesses,
        sort_columns: resolve_cols(schema, spec.sort_columns),
        sel_log10_range: spec.sel_log10_range,
        result_fanout: spec.result_fanout,
        result_rows_cap: spec.result_rows_cap,
        result_row_width: spec.result_row_width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::tpch::{tpch_schema, ScaleFactor};

    #[test]
    fn seven_templates_resolve_against_tpch() {
        let schema = tpch_schema(ScaleFactor(1.0));
        let ts = paper_templates(&schema);
        assert_eq!(ts.len(), 7);
        for t in &ts {
            assert!(!t.accesses.is_empty(), "{} has no accesses", t.name);
            assert!(
                t.sel_log10_range.0 <= t.sel_log10_range.1,
                "{} has inverted selectivity range",
                t.name
            );
        }
    }

    #[test]
    fn driving_table_is_lineitem_for_scan_templates() {
        let schema = tpch_schema(ScaleFactor(1.0));
        let ts = paper_templates(&schema);
        let lineitem = schema.table_by_name("lineitem").unwrap().id;
        for t in &ts {
            assert_eq!(
                t.accesses[0].table, lineitem,
                "{} should drive from lineitem",
                t.name
            );
        }
    }

    #[test]
    fn every_predicate_column_is_also_required() {
        // An index plan must be able to find its key among the accessed
        // columns; the specs keep predicates ⊆ required.
        let schema = tpch_schema(ScaleFactor(1.0));
        for t in paper_templates(&schema) {
            for a in &t.accesses {
                for p in &a.predicates {
                    assert!(
                        a.required.contains(p) || a.optional.contains(p),
                        "{}: predicate column {p} not accessed",
                        t.name
                    );
                }
            }
        }
    }

    #[test]
    fn template_names_are_unique() {
        let specs = paper_template_specs();
        let mut names: Vec<_> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn templates_cover_result_heavy_and_aggregate_regimes() {
        let specs = paper_template_specs();
        assert!(specs.iter().any(|s| s.result_rows_cap <= 10));
        assert!(specs.iter().any(|s| s.result_rows_cap >= 200_000));
    }
}
