//! Query evolution: drifting template popularity.
//!
//! The paper's workload "simulates the query evolution of a million
//! SDSS-like queries" and its Section VII-B explains the 60-second result
//! with it: *"the evolution of the workload leads econ-cheap to evict
//! indexes already built in the cache, before being able to exploit them
//! sufficiently."*
//!
//! We model evolution as a bounded random walk over the template-popularity
//! simplex: every `epoch_len` queries each template weight is multiplied by
//! a log-normal-ish shock and renormalised. Shocks are drawn from the
//! generator's dedicated RNG stream, so evolution is deterministic per seed.

use simcore::sample::Discrete;
use simcore::SimRng;

/// A drifting categorical distribution over templates.
#[derive(Debug, Clone)]
pub struct PopularityDrift {
    weights: Vec<f64>,
    epoch_len: u64,
    drift: f64,
    queries_seen: u64,
    dist: Discrete,
}

impl PopularityDrift {
    /// Creates a drift process over `n` templates.
    ///
    /// * `epoch_len` — queries between weight shocks (0 disables drift);
    /// * `drift` — shock magnitude in `[0, 1)`: each epoch a weight is
    ///   scaled by `exp(u · drift)` with `u ~ U(-1, 1)`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `drift` is not in `[0, 1)`.
    #[must_use]
    pub fn new(n: usize, epoch_len: u64, drift: f64) -> Self {
        assert!(n > 0, "need at least one template");
        assert!((0.0..1.0).contains(&drift), "drift {drift} out of [0,1)");
        let weights = vec![1.0 / n as f64; n];
        let dist = Discrete::new(&weights);
        PopularityDrift {
            weights,
            epoch_len,
            drift,
            queries_seen: 0,
            dist,
        }
    }

    /// Current template weights (normalised).
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Draws the template for the next query, advancing the epoch clock.
    pub fn next_template(&mut self, rng: &mut SimRng) -> usize {
        if self.epoch_len > 0
            && self.queries_seen > 0
            && self.queries_seen.is_multiple_of(self.epoch_len)
        {
            self.shock(rng);
        }
        self.queries_seen += 1;
        self.dist.sample(rng)
    }

    fn shock(&mut self, rng: &mut SimRng) {
        if self.drift == 0.0 {
            return;
        }
        let mut total = 0.0;
        for w in &mut self.weights {
            let u = rng.gen_range_f64(-1.0, 1.0);
            *w *= (u * 4.0 * self.drift).exp();
            // Keep every template reachable: floor at 0.1% pre-normalise.
            *w = w.max(1e-3);
            total += *w;
        }
        for w in &mut self.weights {
            *w /= total;
        }
        self.dist = Discrete::new(&self.weights);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_uniform() {
        let d = PopularityDrift::new(7, 100, 0.2);
        for &w in d.weights() {
            assert!((w - 1.0 / 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_drift_never_changes_weights() {
        let mut d = PopularityDrift::new(4, 10, 0.0);
        let mut rng = SimRng::new(1);
        for _ in 0..1000 {
            d.next_template(&mut rng);
        }
        for &w in d.weights() {
            assert!((w - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn drift_changes_weights_but_keeps_simplex() {
        let mut d = PopularityDrift::new(7, 50, 0.3);
        let mut rng = SimRng::new(2);
        for _ in 0..5000 {
            d.next_template(&mut rng);
        }
        let sum: f64 = d.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights sum {sum}");
        let uniform = 1.0 / 7.0;
        assert!(
            d.weights().iter().any(|&w| (w - uniform).abs() > 0.02),
            "weights never drifted: {:?}",
            d.weights()
        );
        assert!(d.weights().iter().all(|&w| w > 0.0));
    }

    #[test]
    fn epoch_zero_disables_drift() {
        let mut d = PopularityDrift::new(3, 0, 0.5);
        let mut rng = SimRng::new(3);
        for _ in 0..500 {
            d.next_template(&mut rng);
        }
        for &w in d.weights() {
            assert!((w - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn draws_cover_all_templates() {
        let mut d = PopularityDrift::new(7, 1000, 0.1);
        let mut rng = SimRng::new(4);
        let mut seen = [false; 7];
        for _ in 0..2000 {
            seen[d.next_template(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen {seen:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut d = PopularityDrift::new(5, 20, 0.2);
            let mut rng = SimRng::new(seed);
            (0..200)
                .map(|_| d.next_template(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
