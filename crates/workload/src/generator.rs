//! The workload generator: a deterministic stream of [`Query`] instances.

use std::sync::Arc;

use catalog::Schema;
use serde::{Deserialize, Serialize};
use simcore::SimRng;

use crate::evolution::PopularityDrift;
use crate::locality::RegionSampler;
use crate::query::{Query, QueryId, TableAccess};
use crate::templates::{paper_templates, ResolvedTemplate};

/// Tunables of the synthetic workload. Defaults reproduce the regime of
/// the paper's experiments (Section VII-A).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Queries between template-popularity shocks (query evolution).
    pub evolution_epoch: u64,
    /// Shock magnitude in `[0, 1)`.
    pub evolution_drift: f64,
    /// Number of data regions for locality tagging.
    pub regions: u32,
    /// Zipf exponent of region popularity.
    pub region_zipf_s: f64,
    /// Draws between hot-region rotations (0 = static hot set).
    pub region_rotate_every: u64,
    /// Probability an optional column is projected by an instance.
    pub optional_column_prob: f64,
    /// User budget multiplier range over backend price, drawn uniformly.
    /// The paper's users "accept query execution in the back-end", so the
    /// scale is ≥ 1.
    pub budget_scale_range: (f64, f64),
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            evolution_epoch: 2_000,
            evolution_drift: 0.25,
            regions: 64,
            region_zipf_s: 1.1,
            region_rotate_every: 10_000,
            optional_column_prob: 0.35,
            budget_scale_range: (1.05, 1.5),
        }
    }
}

impl WorkloadConfig {
    /// Validates ranges.
    ///
    /// # Errors
    /// Returns a field name and reason on the first invalid field.
    pub fn validate(&self) -> Result<(), (&'static str, String)> {
        if !(0.0..1.0).contains(&self.evolution_drift) {
            return Err((
                "evolution_drift",
                format!("{} not in [0,1)", self.evolution_drift),
            ));
        }
        if self.regions == 0 {
            return Err(("regions", "must be positive".into()));
        }
        if self.region_zipf_s <= 0.0 {
            return Err(("region_zipf_s", "must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.optional_column_prob) {
            return Err(("optional_column_prob", "must be in [0,1]".into()));
        }
        let (lo, hi) = self.budget_scale_range;
        if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo <= hi) {
            return Err(("budget_scale_range", format!("bad range ({lo}, {hi})")));
        }
        Ok(())
    }
}

/// Deterministic generator of the paper's workload.
///
/// Implements `Iterator<Item = Query>`; the stream is infinite and a pure
/// function of `(schema, config, seed)`.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    schema: Arc<Schema>,
    templates: Vec<ResolvedTemplate>,
    config: WorkloadConfig,
    drift: PopularityDrift,
    regions: RegionSampler,
    rng: SimRng,
    next_id: u64,
}

impl WorkloadGenerator {
    /// Creates a generator using the seven paper templates.
    ///
    /// # Panics
    /// Panics if `config` is invalid or the schema is not TPC-H-shaped.
    #[must_use]
    pub fn new(schema: Arc<Schema>, config: WorkloadConfig, seed: u64) -> Self {
        let templates = paper_templates(&schema);
        Self::with_templates(schema, templates, config, seed)
    }

    /// Creates a generator with custom templates (e.g. the SDSS example).
    ///
    /// # Panics
    /// Panics if `config` is invalid or `templates` is empty.
    #[must_use]
    pub fn with_templates(
        schema: Arc<Schema>,
        templates: Vec<ResolvedTemplate>,
        config: WorkloadConfig,
        seed: u64,
    ) -> Self {
        if let Err((field, reason)) = config.validate() {
            panic!("invalid workload config `{field}`: {reason}");
        }
        assert!(!templates.is_empty(), "need at least one template");
        let mut rng = SimRng::new(seed);
        let drift_rng_stream = rng.fork(1);
        let region_rng_stream = rng.fork(2);
        // Dedicated streams keep components independent; we interleave by
        // storing the forks inside the stateful samplers' owner (self.rng
        // drives instance-level draws).
        let drift = PopularityDrift::new(
            templates.len(),
            config.evolution_epoch,
            config.evolution_drift,
        );
        let regions = RegionSampler::new(
            config.regions,
            config.region_zipf_s,
            config.region_rotate_every,
        );
        // Streams for drift/regions are folded into one rng: the samplers
        // take &mut SimRng at call time; give them forks via struct fields.
        let _ = (drift_rng_stream, region_rng_stream);
        WorkloadGenerator {
            schema,
            templates,
            config,
            drift,
            regions,
            rng,
            next_id: 0,
        }
    }

    /// The templates this generator draws from.
    #[must_use]
    pub fn templates(&self) -> &[ResolvedTemplate] {
        &self.templates
    }

    /// The schema queries run against.
    #[must_use]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Generates the next query.
    pub fn next_query(&mut self) -> Query {
        let t_idx = self.drift.next_template(&mut self.rng);
        let template = &self.templates[t_idx];
        let region = self.regions.next_region(&mut self.rng);

        // Driving selectivity: log-uniform within the template's range.
        let (lo, hi) = template.sel_log10_range;
        let sel = 10f64.powf(self.rng.gen_range_f64(lo, hi));

        let mut accesses = Vec::with_capacity(template.accesses.len());
        for a in &template.accesses {
            let mut columns = a.required.clone();
            for &opt in &a.optional {
                if self.rng.gen_bool(self.config.optional_column_prob) {
                    columns.push(opt);
                }
            }
            let local_sel = (sel * a.selectivity_factor).min(1.0);
            accesses.push(TableAccess {
                table: a.table,
                columns,
                predicate_columns: a.predicates.clone(),
                selectivity: local_sel.max(1e-9),
            });
        }

        let driving_rows = self.schema.table(accesses[0].table).row_count;
        let raw_rows = (driving_rows as f64 * sel * template.result_fanout).round() as u64;
        let result_rows = raw_rows.clamp(1, template.result_rows_cap);
        let result_bytes = result_rows.saturating_mul(template.result_row_width);

        let (blo, bhi) = self.config.budget_scale_range;
        let budget_scale = self.rng.gen_range_f64(blo, bhi);

        let id = QueryId(self.next_id);
        self.next_id += 1;
        Query {
            id,
            template: template.id,
            accesses,
            sort_columns: template.sort_columns.clone(),
            result_rows,
            result_bytes,
            budget_scale,
            region,
        }
    }
}

impl Iterator for WorkloadGenerator {
    type Item = Query;
    fn next(&mut self) -> Option<Query> {
        Some(self.next_query())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::tpch::{tpch_schema, ScaleFactor};

    fn generator(seed: u64) -> WorkloadGenerator {
        let schema = Arc::new(tpch_schema(ScaleFactor(1.0)));
        WorkloadGenerator::new(schema, WorkloadConfig::default(), seed)
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<Query> = generator(42).take(50).collect();
        let b: Vec<Query> = generator(42).take(50).collect();
        assert_eq!(a, b);
        let c: Vec<Query> = generator(43).take(50).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn ids_are_sequential() {
        let qs: Vec<Query> = generator(1).take(10).collect();
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(q.id, QueryId(i as u64));
        }
    }

    #[test]
    fn selectivities_respect_template_ranges() {
        let schema = Arc::new(tpch_schema(ScaleFactor(1.0)));
        let templates = paper_templates(&schema);
        let mut g = generator(7);
        for q in (&mut g).take(500) {
            let t = &templates[q.template.0];
            let (lo, hi) = t.sel_log10_range;
            let sel = q.driving().selectivity;
            assert!(
                sel >= 10f64.powf(lo) * 0.999 && sel <= 10f64.powf(hi) * 1.001,
                "template {} selectivity {sel} outside 10^[{lo},{hi}]",
                t.name
            );
        }
    }

    #[test]
    fn result_sizes_are_positive_and_capped() {
        let schema = Arc::new(tpch_schema(ScaleFactor(1.0)));
        let templates = paper_templates(&schema);
        for q in generator(3).take(1000) {
            assert!(q.result_rows >= 1);
            assert!(q.result_bytes >= 1);
            let cap = templates[q.template.0].result_rows_cap;
            assert!(q.result_rows <= cap, "rows {} > cap {cap}", q.result_rows);
        }
    }

    #[test]
    fn budget_scale_in_configured_range() {
        for q in generator(4).take(500) {
            assert!((1.05..=1.5).contains(&q.budget_scale), "{}", q.budget_scale);
        }
    }

    #[test]
    fn all_templates_appear() {
        let mut seen = [false; 7];
        for q in generator(5).take(2000) {
            seen[q.template.0] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn optional_columns_vary() {
        // Q1 has an optional l_tax column; across instances both shapes
        // must appear.
        let mut with = 0;
        let mut without = 0;
        for q in generator(6).take(3000) {
            if q.template.0 == 0 {
                match q.driving().columns.len() {
                    6 => without += 1,
                    7 => with += 1,
                    n => panic!("unexpected column count {n}"),
                }
            }
        }
        assert!(with > 0 && without > 0, "with={with} without={without}");
    }

    #[test]
    fn regions_within_bounds() {
        for q in generator(8).take(500) {
            assert!(q.region < WorkloadConfig::default().regions);
        }
    }

    #[test]
    #[should_panic(expected = "invalid workload config")]
    fn invalid_config_rejected() {
        let schema = Arc::new(tpch_schema(ScaleFactor(1.0)));
        let cfg = WorkloadConfig {
            evolution_drift: 2.0,
            ..WorkloadConfig::default()
        };
        let _ = WorkloadGenerator::new(schema, cfg, 1);
    }

    #[test]
    fn config_validation_covers_fields() {
        let mut c = WorkloadConfig::default();
        assert!(c.validate().is_ok());
        c.regions = 0;
        assert_eq!(c.validate().unwrap_err().0, "regions");
        c = WorkloadConfig::default();
        c.region_zipf_s = 0.0;
        assert_eq!(c.validate().unwrap_err().0, "region_zipf_s");
        c = WorkloadConfig::default();
        c.optional_column_prob = 1.5;
        assert_eq!(c.validate().unwrap_err().0, "optional_column_prob");
        c = WorkloadConfig::default();
        c.budget_scale_range = (2.0, 1.0);
        assert_eq!(c.validate().unwrap_err().0, "budget_scale_range");
    }
}
