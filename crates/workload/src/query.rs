//! The query model the planner and the economy consume.

use catalog::{ColumnId, TableId};
use serde::{Deserialize, Serialize};

use crate::templates::TemplateId;

/// Workload-wide query sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QueryId(pub u64);

/// One table touched by a query: which columns it reads and how selective
/// its local predicates are.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableAccess {
    /// The table.
    pub table: TableId,
    /// Columns read (projection + predicate columns).
    pub columns: Vec<ColumnId>,
    /// Columns with sargable predicates — candidates for index access.
    pub predicate_columns: Vec<ColumnId>,
    /// Combined selectivity of the local predicates, in `(0, 1]`.
    pub selectivity: f64,
}

/// A concrete query instance produced by the workload generator.
///
/// The simulator never parses SQL: a query is exactly the information the
/// cost model needs — which columns it touches, how selective it is, and
/// how big its result is (`S(Q)` in eq. 9 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Sequence number.
    pub id: QueryId,
    /// Which of the 7 templates produced it.
    pub template: TemplateId,
    /// Tables accessed; the first entry is the *driving* table (largest,
    /// cost-dominant — `lineitem` for most TPC-H templates).
    pub accesses: Vec<TableAccess>,
    /// ORDER BY / GROUP BY columns — what a covering index would sort by.
    pub sort_columns: Vec<ColumnId>,
    /// Estimated result cardinality.
    pub result_rows: u64,
    /// Estimated result size in bytes — `S(Q)` of eq. 9.
    pub result_bytes: u64,
    /// The user's willingness to pay, as a multiplier over the price of
    /// backend execution (the paper's users "accept query execution in the
    /// back-end", so their budget always covers at least that).
    pub budget_scale: f64,
    /// Data-region tag (locality bookkeeping; regions share cache content
    /// because caching is column-granular, but the tag drives future
    /// partial-column extensions and diagnostics).
    pub region: u32,
}

impl Query {
    /// The driving (cost-dominant) table access.
    ///
    /// # Panics
    /// Panics if the query has no accesses — the generator never emits one.
    #[must_use]
    pub fn driving(&self) -> &TableAccess {
        self.accesses.first().expect("query accesses no table")
    }

    /// Every column the query touches, across all tables.
    pub fn all_columns(&self) -> impl Iterator<Item = ColumnId> + '_ {
        self.accesses.iter().flat_map(|a| a.columns.iter().copied())
    }

    /// Number of distinct columns touched.
    #[must_use]
    pub fn column_count(&self) -> usize {
        self.accesses.iter().map(|a| a.columns.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> Query {
        Query {
            id: QueryId(7),
            template: TemplateId(0),
            accesses: vec![
                TableAccess {
                    table: TableId(0),
                    columns: vec![ColumnId(1), ColumnId(2)],
                    predicate_columns: vec![ColumnId(1)],
                    selectivity: 0.01,
                },
                TableAccess {
                    table: TableId(1),
                    columns: vec![ColumnId(9)],
                    predicate_columns: vec![],
                    selectivity: 1.0,
                },
            ],
            sort_columns: vec![ColumnId(2)],
            result_rows: 1000,
            result_bytes: 50_000,
            budget_scale: 1.2,
            region: 3,
        }
    }

    #[test]
    fn driving_is_first_access() {
        assert_eq!(q().driving().table, TableId(0));
    }

    #[test]
    fn all_columns_spans_tables() {
        let cols: Vec<ColumnId> = q().all_columns().collect();
        assert_eq!(cols, vec![ColumnId(1), ColumnId(2), ColumnId(9)]);
        assert_eq!(q().column_count(), 3);
    }
}
