//! Data-access locality: Zipf-hot, slowly rotating data regions.
//!
//! Section VI of the paper: the economy is viable when "queries have data
//! access locality, i.e. they mostly target a specific part of the data"
//! and SDSS workloads show "a small portion of the data is of intense
//! interest to the users". We tag each query with a *region* drawn from a
//! Zipf distribution whose rank-1 region slowly rotates, so the hot set is
//! both concentrated (Zipf) and non-stationary (rotation) — the same two
//! properties the SkyServer traffic studies report.

use simcore::sample::Zipf;
use simcore::SimRng;

/// Sampler of data-region tags with rotating Zipf-hot spot.
#[derive(Debug, Clone)]
pub struct RegionSampler {
    zipf: Zipf,
    regions: u32,
    rotate_every: u64,
    drawn: u64,
    offset: u32,
}

impl RegionSampler {
    /// Creates a sampler over `regions` regions with Zipf exponent `s`;
    /// the hot region advances by one every `rotate_every` draws
    /// (0 disables rotation).
    ///
    /// # Panics
    /// Panics if `regions == 0` or `s <= 0`.
    #[must_use]
    pub fn new(regions: u32, s: f64, rotate_every: u64) -> Self {
        assert!(regions > 0, "need at least one region");
        RegionSampler {
            zipf: Zipf::new(u64::from(regions), s),
            regions,
            rotate_every,
            drawn: 0,
            offset: 0,
        }
    }

    /// Number of regions.
    #[must_use]
    pub fn regions(&self) -> u32 {
        self.regions
    }

    /// Draws the region tag for the next query.
    pub fn next_region(&mut self, rng: &mut SimRng) -> u32 {
        if self.rotate_every > 0 && self.drawn > 0 && self.drawn.is_multiple_of(self.rotate_every) {
            self.offset = (self.offset + 1) % self.regions;
        }
        self.drawn += 1;
        let rank = self.zipf.sample(rng) as u32 - 1; // 0-based
        (rank + self.offset) % self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_in_range() {
        let mut s = RegionSampler::new(16, 1.0, 0);
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            assert!(s.next_region(&mut rng) < 16);
        }
    }

    #[test]
    fn hot_region_dominates_without_rotation() {
        let mut s = RegionSampler::new(100, 1.2, 0);
        let mut rng = SimRng::new(6);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[s.next_region(&mut rng) as usize] += 1;
        }
        let hottest = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], hottest, "region 0 should be hottest");
        assert!(hottest as f64 / 20_000.0 > 0.1);
    }

    #[test]
    fn rotation_moves_the_hot_spot() {
        let mut s = RegionSampler::new(10, 2.0, 1000);
        let mut rng = SimRng::new(7);
        let hot_of = |s: &mut RegionSampler, rng: &mut SimRng| {
            let mut counts = [0u32; 10];
            for _ in 0..1000 {
                counts[s.next_region(rng) as usize] += 1;
            }
            counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap()
        };
        let first = hot_of(&mut s, &mut rng);
        let second = hot_of(&mut s, &mut rng);
        assert_ne!(first, second, "hot region should rotate");
    }

    #[test]
    fn single_region_degenerates() {
        let mut s = RegionSampler::new(1, 1.0, 10);
        let mut rng = SimRng::new(8);
        for _ in 0..100 {
            assert_eq!(s.next_region(&mut rng), 0);
        }
    }
}
