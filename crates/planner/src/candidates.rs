//! Candidate index generation — the stand-in for DB2's advisor.
//!
//! Section VII-A of the paper: *"We use 65 potentially useful indexes from
//! DB2's 'recommend indexes' mode recommendations."* DB2's advisor derives
//! candidates from the workload's predicates, sort orders and projections;
//! we do the same from the resolved templates:
//!
//! 1. a single-column index on every sargable predicate column;
//! 2. predicate + second predicate composites (multi-predicate templates);
//! 3. predicate + sort-column composites (order-by-piggyback);
//! 4. covering indexes (predicate + every projected column of the access)
//!    when the key stays reasonably narrow;
//! 5. two-column composites of a predicate column with each projected
//!    column (partial covering).
//!
//! Candidates are deduplicated by key-column list and capped (default 65,
//! matching the paper) in generation-priority order — single-column and
//! sort composites first, wide covering sets last.

use cache::{IndexDef, IndexId, ROW_LOCATOR_BYTES};
use catalog::{ColumnId, Schema, TableId};
use std::collections::HashSet;
use workload::ResolvedTemplate;

/// Maximum key width (bytes per entry) for generated covering candidates.
const MAX_COVERING_ENTRY_BYTES: u64 = 64;

/// The paper's candidate budget.
pub const PAPER_CANDIDATE_CAP: usize = 65;

/// Generates up to `cap` candidate indexes for the template set.
///
/// Deterministic: depends only on schema and template order.
#[must_use]
pub fn generate_candidates(
    schema: &Schema,
    templates: &[ResolvedTemplate],
    cap: usize,
) -> Vec<IndexDef> {
    let mut seen: HashSet<Vec<ColumnId>> = HashSet::new();
    let mut out: Vec<IndexDef> = Vec::new();
    let push =
        |out: &mut Vec<IndexDef>, seen: &mut HashSet<Vec<ColumnId>>, table, keys: Vec<ColumnId>| {
            if keys.is_empty() || out.len() >= cap {
                return;
            }
            if seen.insert(keys.clone()) {
                out.push(IndexDef {
                    id: IndexId(out.len() as u32),
                    table,
                    key_columns: keys,
                });
            }
        };

    // Pass 1: single-column predicate indexes (most reusable).
    for t in templates {
        for a in &t.accesses {
            for &p in &a.predicates {
                push(&mut out, &mut seen, a.table, vec![p]);
            }
        }
    }
    // Pass 2: predicate + predicate composites.
    for t in templates {
        for a in &t.accesses {
            for &p1 in &a.predicates {
                for &p2 in &a.predicates {
                    if p1 != p2 {
                        push(&mut out, &mut seen, a.table, vec![p1, p2]);
                    }
                }
            }
        }
    }
    // Pass 3: predicate + sort-column composites (same table only).
    for t in templates {
        for a in &t.accesses {
            let table_sorts: Vec<ColumnId> = t
                .sort_columns
                .iter()
                .copied()
                .filter(|&s| schema.column(s).table == a.table)
                .collect();
            for &p in &a.predicates {
                for &s in &table_sorts {
                    if s != p {
                        push(&mut out, &mut seen, a.table, vec![p, s]);
                    }
                }
                if table_sorts.len() > 1 {
                    let mut keys = vec![p];
                    keys.extend(table_sorts.iter().copied().filter(|&s| s != p));
                    push(&mut out, &mut seen, a.table, keys);
                }
            }
        }
    }
    // Pass 4: covering indexes (predicate first, then every projected
    // column), kept only when the entry stays narrow.
    for t in templates {
        for a in &t.accesses {
            for &p in &a.predicates {
                let mut keys = vec![p];
                for &c in a.required.iter().chain(a.optional.iter()) {
                    if !keys.contains(&c) {
                        keys.push(c);
                    }
                }
                let entry: u64 = keys.iter().map(|&c| schema.column(c).byte_width()).sum();
                if entry <= MAX_COVERING_ENTRY_BYTES {
                    push(&mut out, &mut seen, a.table, keys);
                }
            }
        }
    }
    // Pass 5: predicate × projected-column pairs (partial covering).
    for t in templates {
        for a in &t.accesses {
            for &p in &a.predicates {
                for &c in a.required.iter().chain(a.optional.iter()) {
                    if c != p {
                        push(&mut out, &mut seen, a.table, vec![p, c]);
                    }
                }
            }
        }
    }
    // Pass 6: single-column indexes on sort columns (ORDER BY piggyback
    // without a predicate — DB2 recommends these for sort elimination).
    for t in templates {
        for &s in &t.sort_columns {
            push(&mut out, &mut seen, schema.column(s).table, vec![s]);
        }
    }
    // Pass 7: single-column indexes on every projected column (join keys
    // and fetch acceleration — the long tail of advisor output).
    for t in templates {
        for a in &t.accesses {
            for &c in a.required.iter().chain(a.optional.iter()) {
                push(&mut out, &mut seen, a.table, vec![c]);
            }
        }
    }
    // Pass 8: predicate + two projected columns (three-column partial
    // covering composites).
    for t in templates {
        for a in &t.accesses {
            let proj: Vec<ColumnId> = a
                .required
                .iter()
                .chain(a.optional.iter())
                .copied()
                .collect();
            for &p in &a.predicates {
                for (i, &c1) in proj.iter().enumerate() {
                    for &c2 in proj.iter().skip(i + 1) {
                        if c1 != p && c2 != p {
                            push(&mut out, &mut seen, a.table, vec![p, c1, c2]);
                        }
                    }
                }
            }
        }
    }
    out
}

/// One candidate as seen through the per-table index: its position in the
/// candidate registry plus the precomputed index-entry width (key columns
/// + row locator) the scorer needs.
#[derive(Debug, Clone, Copy)]
pub struct TableCandidate {
    /// Position in the candidate slice the index was built over.
    pub pos: usize,
    /// Bytes per index entry: Σ key-column widths + [`ROW_LOCATOR_BYTES`].
    pub entry_bytes: u64,
}

/// A prebuilt table → candidates index.
///
/// The enumerator scores candidate indexes per table access; scanning the
/// full 65-candidate registry per access (the seed behaviour) wastes most
/// of the scan on other tables and recomputes every candidate's entry
/// width from the schema each time. This index is built once next to the
/// candidate registry and shared read-only by every planning call.
///
/// Candidate order *within a table* preserves registry order, so scoring
/// ties break identically to a full registry scan.
#[derive(Debug, Clone, Default)]
pub struct CandidateIndex {
    by_table: Vec<Vec<TableCandidate>>,
}

impl CandidateIndex {
    /// Builds the index over `candidates` (pair it with the exact slice
    /// handed to the planner context).
    #[must_use]
    pub fn build(schema: &Schema, candidates: &[IndexDef]) -> Self {
        let mut by_table: Vec<Vec<TableCandidate>> = Vec::new();
        for (pos, def) in candidates.iter().enumerate() {
            let t = def.table.0 as usize;
            if t >= by_table.len() {
                by_table.resize_with(t + 1, Vec::new);
            }
            let entry_bytes: u64 = def
                .key_columns
                .iter()
                .map(|&c| schema.column(c).byte_width())
                .sum::<u64>()
                + ROW_LOCATOR_BYTES;
            by_table[t].push(TableCandidate { pos, entry_bytes });
        }
        CandidateIndex { by_table }
    }

    /// Candidates on `table`, in registry order.
    #[must_use]
    pub fn for_table(&self, table: TableId) -> &[TableCandidate] {
        self.by_table
            .get(table.0 as usize)
            .map_or(&[], Vec::as_slice)
    }

    /// Total candidates indexed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_table.iter().map(Vec::len).sum()
    }

    /// True if no candidates are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::tpch::{tpch_schema, ScaleFactor};
    use workload::paper_templates;

    fn candidates(cap: usize) -> (Schema, Vec<IndexDef>) {
        let schema = tpch_schema(ScaleFactor(1.0));
        let templates = paper_templates(&schema);
        let c = generate_candidates(&schema, &templates, cap);
        (schema, c)
    }

    #[test]
    fn generates_the_paper_cap_of_65() {
        let (_, c) = candidates(PAPER_CANDIDATE_CAP);
        assert_eq!(c.len(), 65, "workload must yield ≥ 65 candidates");
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let (_, c) = candidates(65);
        for (i, idx) in c.iter().enumerate() {
            assert_eq!(idx.id, IndexId(i as u32));
        }
    }

    #[test]
    fn no_duplicate_key_lists() {
        let (_, c) = candidates(65);
        let mut keys: Vec<&Vec<ColumnId>> = c.iter().map(|i| &i.key_columns).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), c.len());
    }

    #[test]
    fn keys_belong_to_the_index_table() {
        let (schema, c) = candidates(65);
        for idx in &c {
            for &k in &idx.key_columns {
                assert_eq!(
                    schema.column(k).table,
                    idx.table,
                    "{} key {k} from wrong table",
                    idx.id
                );
            }
        }
    }

    #[test]
    fn every_sargable_predicate_gets_a_single_column_index() {
        let schema = tpch_schema(ScaleFactor(1.0));
        let templates = paper_templates(&schema);
        let c = generate_candidates(&schema, &templates, 65);
        for t in &templates {
            for a in &t.accesses {
                for &p in &a.predicates {
                    assert!(
                        c.iter().any(|i| i.serves_predicate(p)),
                        "no candidate serves predicate {p} of {}",
                        t.name
                    );
                }
            }
        }
    }

    #[test]
    fn cap_is_respected() {
        let (_, c) = candidates(10);
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn candidate_index_partitions_the_registry_in_order() {
        let (schema, c) = candidates(65);
        let index = CandidateIndex::build(&schema, &c);
        assert_eq!(index.len(), c.len());
        assert!(!index.is_empty());
        let mut seen = 0;
        for table in 0..schema.tables().len() as u32 {
            let slice = index.for_table(TableId(table));
            for tc in slice {
                assert_eq!(c[tc.pos].table, TableId(table));
                let expected: u64 = c[tc.pos]
                    .key_columns
                    .iter()
                    .map(|&k| schema.column(k).byte_width())
                    .sum::<u64>()
                    + ROW_LOCATOR_BYTES;
                assert_eq!(tc.entry_bytes, expected);
            }
            assert!(
                slice.windows(2).all(|w| w[0].pos < w[1].pos),
                "registry order preserved"
            );
            seen += slice.len();
        }
        assert_eq!(seen, c.len());
    }

    #[test]
    fn singles_come_before_composites() {
        let (_, c) = candidates(65);
        let first_composite = c.iter().position(|i| i.key_columns.len() > 1).unwrap();
        assert!(
            c[..first_composite]
                .iter()
                .all(|i| i.key_columns.len() == 1),
            "pass-1 singles must lead"
        );
        assert!(first_composite >= 5, "several sargable predicates exist");
    }
}
