//! The cache-independent half of plan enumeration.
//!
//! In a fleet quote round every node bidding on the same query enumerates
//! the same plan set — yet most of that work (backend estimate, candidate
//! index choice, per-variant execution volumes, build-cost shapes) reads
//! only the [`PlannerContext`] and the query, never the node's
//! [`CacheState`]. A [`PlanSkeleton`] captures exactly that half, so a
//! quote round computes it **once** and each node runs only the cheap
//! completion phase ([`complete_plans_into`]) that binds the skeleton
//! against its own cache: which structures exist, which are still
//! building, and what amortisation/maintenance dues they carry.
//!
//! The split is exact: for any cache state, clock and enumeration
//! options, `PlanSkeleton::build` + `complete_plans_into` emits plans
//! **bit-identical** to the fused [`enumerate_plans_into`] — same plans,
//! same order, same prices. `tests/skeleton_split.rs` pins the property
//! over random cache histories; the economy's memoization and the fleet's
//! routing determinism both rest on it.
//!
//! The skeleton is a *superset*: it is built with every plan family
//! enabled (indexes and extra nodes), and the completion phase filters by
//! the caller's [`EnumerationOptions`]. One skeleton therefore serves
//! heterogeneous nodes (econ-cheap, econ-fast, econ-col) in the same
//! quote round. Hot per-(variant, node-count) execution fields are stored
//! in struct-of-arrays form ([`ExecCells`]), matching the SoA selection
//! scans in [`crate::soa`].

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cache::{CacheState, CachedStructure, IndexDef, IndexId, StructureKey};
use catalog::ColumnId;
use metrics::CostBreakdown;
use pricing::Money;
use simcore::{SimDuration, SimTime};
use workload::Query;

use crate::enumerate::{best_index_for, EnumerationOptions, PlanBuffer, PlannerContext};
use crate::plan::PlanShape;

/// Writes the planning fingerprint of `query` into `out` (cleared first).
///
/// The fingerprint covers exactly the query fields plan enumeration reads
/// — table accesses (table, columns, predicates, selectivity), sort
/// columns and result shape — and deliberately excludes `budget_scale`
/// (budget only), `id` and `region` (unread). Two queries with equal
/// fingerprints therefore enumerate identical plan sets, which is the
/// key invariant behind both the per-manager plan memo
/// (`econ::plancache`) and the fleet-wide [`SkeletonCache`].
pub fn planning_fingerprint(query: &Query, out: &mut Vec<u64>) {
    out.clear();
    out.push(query.accesses.len() as u64);
    for a in &query.accesses {
        out.push(u64::from(a.table.0));
        out.push(a.columns.len() as u64);
        out.extend(a.columns.iter().map(|c| u64::from(c.0)));
        out.push(a.predicate_columns.len() as u64);
        out.extend(a.predicate_columns.iter().map(|c| u64::from(c.0)));
        out.push(a.selectivity.to_bits());
    }
    out.push(query.sort_columns.len() as u64);
    out.extend(query.sort_columns.iter().map(|c| u64::from(c.0)));
    out.push(query.result_rows);
    out.push(query.result_bytes);
}

/// One key column's standalone fetch quote (eq. 12), charged at
/// completion time only when the column is neither cached nor already
/// among the plan's missing columns.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyFetch {
    /// The key column.
    pub column: ColumnId,
    /// Transfer cost if the fetch is charged.
    pub cost: Money,
    /// Transfer time if the fetch is charged.
    pub time: SimDuration,
}

/// The cache-independent build-cost shape of one structure in a variant's
/// `uses` list.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildShape {
    /// Column transfer from the back-end (eq. 12): the full quote.
    Column {
        /// Build cost.
        cost: Money,
        /// Transfer time.
        time: SimDuration,
    },
    /// Index build (eq. 14), decomposed: the sort plan over the keyed
    /// data (always charged) plus per-key-column fetches (conditionally
    /// charged — a key column already cached, or being built by the same
    /// plan, is not fetched twice).
    Index {
        /// Sort-plan cost (CPU + I/O), fetches excluded.
        sort_cost: Money,
        /// Sort-plan time, fetches excluded.
        sort_time: SimDuration,
        /// Conditional fetch quotes, in key-column order.
        keys: Vec<KeyFetch>,
    },
}

/// Per-(node-count) execution cells of one index variant, struct-of-arrays:
/// the skyline/selection hot fields live in parallel slices instead of
/// being scattered across plan structs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecCells {
    /// Total CPU nodes employed per cell (mirrors
    /// `CostParams::node_options` order).
    pub nodes: Vec<u32>,
    /// Wall-clock execution time per cell.
    pub time: Vec<SimDuration>,
    /// Execution cost `Ce` per cell.
    pub cost: Vec<Money>,
    /// Per-resource split of the execution cost per cell.
    pub breakdown: Vec<CostBreakdown>,
}

impl ExecCells {
    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no cells are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, nodes: u32, time: SimDuration, cost: Money, breakdown: CostBreakdown) {
        self.nodes.push(nodes);
        self.time.push(time);
        self.cost.push(cost);
        self.breakdown.push(breakdown);
    }
}

/// One index-assignment variant of the skeleton: the scan-only variant,
/// or the best-index variant when any access has a serving candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantSkeleton {
    /// Index assigned per table access (`None` = column scan), for the
    /// emitted [`PlanShape`].
    pub indexes: Vec<Option<IndexId>>,
    /// True for the indexed variant — skipped at completion when the
    /// policy forbids index plans.
    pub uses_indexes: bool,
    /// Data structures the variant employs: accessed columns in
    /// first-seen order, then the assigned indexes. Extra CPU nodes are
    /// appended per node count at completion.
    pub uses: Vec<StructureKey>,
    /// Build-cost shape per entry of `uses` (parallel).
    pub builds: Vec<BuildShape>,
    /// Execution estimates at every node count (SoA).
    pub cells: ExecCells,
}

/// The deduplicated cache-probe table of a skeleton: the union of every
/// variant's `uses` plus index key-fetch columns, with per-variant
/// position maps back into it.
///
/// A pure function of the variants, computed once in
/// [`PlanSkeleton::build`] — skeletons are memoized (the shared
/// [`SkeletonCache`], the economy's plan memo), so batched completion
/// rounds ([`planner::batch`](crate::batch)) read the table for free
/// instead of re-deduplicating every round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProbeTable {
    /// Distinct structures, first-seen order: each is probed once per
    /// node per gather, however many variants reference it.
    pub keys: Vec<StructureKey>,
    /// Per entry of `keys`: whether some variant *uses* the structure
    /// (amortisation/maintenance lanes needed) or it is referenced only
    /// for key-fetch presence.
    pub priced: Vec<bool>,
    /// Flat per-variant maps of `uses` position → index into `keys`;
    /// variant `vi` owns `uses_map[uses_off[vi]..uses_off[vi + 1]]`.
    uses_map: Vec<u32>,
    /// Variant offsets into `uses_map` (and, position-wise, `key_off`).
    uses_off: Vec<u32>,
    /// Flat key-fetch resolutions `(in_variant, index into keys)` of
    /// every index build, in variant-then-position order. `in_variant`
    /// is the node-independent half of the coverage rule: a variant-used
    /// key column is either present or built alongside the index, so it
    /// is never fetched standalone.
    key_map: Vec<(bool, u32)>,
    /// Per global `uses` position (`uses_off[vi] + pos`): offsets into
    /// `key_map` — an empty span for column builds.
    key_off: Vec<u32>,
}

impl ProbeTable {
    /// Variant `vi`'s `uses` position → probe-table index map.
    #[must_use]
    pub fn uses_probe(&self, vi: usize) -> &[u32] {
        &self.uses_map[self.uses_off[vi] as usize..self.uses_off[vi + 1] as usize]
    }

    /// Variant `vi`'s position-`pos` index build, resolved per key
    /// column to `(in_variant, probe-table index)` — empty for column
    /// builds.
    #[must_use]
    pub fn key_probe(&self, vi: usize, pos: usize) -> &[(bool, u32)] {
        let g = self.uses_off[vi] as usize + pos;
        &self.key_map[self.key_off[g] as usize..self.key_off[g + 1] as usize]
    }

    fn build(variants: &[VariantSkeleton]) -> ProbeTable {
        let mut t = ProbeTable::default();
        t.uses_off.push(0);
        t.key_off.push(0);
        for variant in variants {
            for &key in &variant.uses {
                let u = match t.keys.iter().position(|&k| k == key) {
                    Some(u) => {
                        t.priced[u] = true;
                        u
                    }
                    None => {
                        t.keys.push(key);
                        t.priced.push(true);
                        t.keys.len() - 1
                    }
                };
                t.uses_map.push(u as u32);
            }
            t.uses_off.push(t.uses_map.len() as u32);
            for build in &variant.builds {
                if let BuildShape::Index { keys, .. } = build {
                    for kf in keys {
                        let col = StructureKey::Column(kf.column);
                        let in_variant = variant.uses.contains(&col);
                        let u = match t.keys.iter().position(|&k| k == col) {
                            Some(u) => u,
                            None => {
                                t.keys.push(col);
                                t.priced.push(false);
                                t.keys.len() - 1
                            }
                        };
                        t.key_map.push((in_variant, u as u32));
                    }
                }
                t.key_off.push(t.key_map.len() as u32);
            }
        }
        t
    }
}

/// Everything about a query's plan set that does not depend on any node's
/// cache state — computed once per query, shared across every node that
/// bids on it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSkeleton {
    /// Backend execution time (eq. 9).
    pub backend_time: SimDuration,
    /// Backend execution cost.
    pub backend_cost: Money,
    /// Backend per-resource cost split.
    pub backend_breakdown: CostBreakdown,
    /// Extra-CPU-node build quote (eq. 10): (cost, boot time).
    pub node_build_cost: Money,
    /// Node boot time.
    pub node_build_time: SimDuration,
    /// Index variants: scan-only first, then the best-index variant when
    /// one exists.
    pub variants: Vec<VariantSkeleton>,
    /// The variants' deduplicated probe table, for batched completion.
    pub probe: ProbeTable,
}

/// A [`PlanSkeleton`] built on first use and shared from then on.
///
/// A quote round hands every bidding node one of these; in the
/// prepared-statement regime where every node's plan cache fully hits,
/// nobody calls [`Self::get`] and the round pays nothing for a skeleton
/// it never reads. The cell is thread-safe, so workers of a parallel
/// fan-out race benignly (the build is a pure function — every winner
/// produces identical bits).
pub struct LazySkeleton<'a> {
    ctx: PlannerContext<'a>,
    query: &'a Query,
    shared: Option<&'a SkeletonCache>,
    cell: std::sync::OnceLock<Arc<PlanSkeleton>>,
}

impl<'a> LazySkeleton<'a> {
    /// An unbuilt skeleton for `query`.
    #[must_use]
    pub fn new(ctx: &PlannerContext<'a>, query: &'a Query) -> Self {
        LazySkeleton {
            ctx: *ctx,
            query,
            shared: None,
            cell: std::sync::OnceLock::new(),
        }
    }

    /// An unbuilt skeleton that resolves through a fleet-wide
    /// [`SkeletonCache`]: a build forced here first probes the shared
    /// cache under the query's planning fingerprint, so concurrently
    /// running cells stop rebuilding identical skeletons.
    #[must_use]
    pub fn with_cache(
        ctx: &PlannerContext<'a>,
        query: &'a Query,
        shared: &'a SkeletonCache,
    ) -> Self {
        LazySkeleton {
            ctx: *ctx,
            query,
            shared: Some(shared),
            cell: std::sync::OnceLock::new(),
        }
    }

    /// The skeleton, building it on first call.
    pub fn get(&self) -> &Arc<PlanSkeleton> {
        self.cell.get_or_init(|| match self.shared {
            Some(cache) => cache.get_or_build(&self.ctx, self.query),
            None => Arc::new(PlanSkeleton::build(&self.ctx, self.query)),
        })
    }

    /// True if some caller has forced the build already.
    #[must_use]
    pub fn is_built(&self) -> bool {
        self.cell.get().is_some()
    }
}

/// Number of independently locked shards of a [`SkeletonCache`].
const SKELETON_CACHE_SHARDS: usize = 16;

/// Entry cap per shard; a full shard is cleared on the next insert, which
/// bounds the cache at `SKELETON_CACHE_SHARDS × SKELETON_SHARD_CAP`
/// skeletons without any replacement bookkeeping on the hit path.
const SKELETON_SHARD_CAP: usize = 256;

/// Admission-filter slots per shard (one-slot hash buckets of recently
/// seen fingerprint hashes). Power of two so the index is a mask.
const SKELETON_SEEN_SLOTS: usize = 1024;

/// One shard of a [`SkeletonCache`]: admitted skeletons plus the
/// admission filter of recently seen fingerprint hashes.
#[derive(Debug, Default)]
struct SkeletonShard {
    map: HashMap<Vec<u64>, Arc<PlanSkeleton>>,
    /// One-slot buckets of fingerprint hashes seen once: a second
    /// sighting admits the fingerprint into `map`. Collisions simply
    /// overwrite (a lost sighting only delays admission by one round).
    seen: Vec<u64>,
}

/// Counter snapshot of a [`SkeletonCache`] (see
/// [`SkeletonCache::counters`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SkeletonCacheCounters {
    /// Probes served from the map.
    pub hits: u64,
    /// Probes that had to build (filtered or first-sighting).
    pub misses: u64,
    /// Misses whose skeleton was stored (second sighting onward).
    pub admissions: u64,
}

/// A fleet-wide, fingerprint-keyed cache of built [`PlanSkeleton`]s,
/// sharded for concurrent access from cell worker threads.
///
/// Skeletons are pure functions of `(context, query fingerprint)`, so
/// whichever racing builder lands in the map, every reader receives
/// identical bits — sharing the cache across concurrently simulated
/// cells cannot perturb any cell's results, only its wall-clock. Builds
/// happen outside the shard lock (two cells may briefly build the same
/// skeleton; the loser's copy is dropped).
///
/// Storage is **admission-filtered**: a fingerprint is only memoized
/// once it has been seen twice, so workloads whose instances never
/// repeat (ad-hoc parameterisations drawn from a continuous space) pay
/// one hash probe per build instead of churning the map with skeletons
/// nobody will reuse — storing every one-shot skeleton measurably
/// dragged the quote round. Prepared-statement / trace-replay regimes,
/// where fingerprints do repeat, hit from the third sighting on.
#[derive(Debug)]
pub struct SkeletonCache {
    shards: Vec<Mutex<SkeletonShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    admissions: AtomicU64,
}

impl Default for SkeletonCache {
    fn default() -> Self {
        SkeletonCache::new()
    }
}

impl SkeletonCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        SkeletonCache {
            shards: (0..SKELETON_CACHE_SHARDS)
                .map(|_| {
                    Mutex::new(SkeletonShard {
                        map: HashMap::new(),
                        seen: vec![0; SKELETON_SEEN_SLOTS],
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            admissions: AtomicU64::new(0),
        }
    }

    /// `(hits, misses)` so far — wall-clock diagnostics only.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Counter snapshot — hits, misses and admissions (misses whose
    /// fingerprint passed the seen-twice filter and were stored). The
    /// admission rate against the miss count is the tuning signal for
    /// the filter/shard sizing the ROADMAP's admission-tuning item
    /// tracks: misses ≫ admissions means the filter is correctly
    /// rejecting one-shot fingerprints; admissions without subsequent
    /// hits mean the filter admits too eagerly.
    #[must_use]
    pub fn counters(&self) -> SkeletonCacheCounters {
        SkeletonCacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            admissions: self.admissions.load(Ordering::Relaxed),
        }
    }

    /// The skeleton for `query`, built on first need and memoized once
    /// its fingerprint proves to repeat.
    #[must_use]
    pub fn get_or_build(&self, ctx: &PlannerContext<'_>, query: &Query) -> Arc<PlanSkeleton> {
        thread_local! {
            /// Per-thread fingerprint scratch — probing must not allocate.
            static FP: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        FP.with(|cell| {
            let mut fp = cell.borrow_mut();
            planning_fingerprint(query, &mut fp);
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            fp.hash(&mut hasher);
            let hash = hasher.finish();
            let shard = &self.shards[(hash as usize) % self.shards.len()];

            let admitted = {
                let mut guard = shard.lock().expect("skeleton shard poisoned");
                if let Some(hit) = guard.map.get(fp.as_slice()) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(hit);
                }
                // Branch-free one-slot probe: unconditionally replace the
                // bucket with this hash and admit iff the old occupant
                // already was it — same semantics as test-then-store
                // (re-storing an equal hash is a no-op), one load + one
                // store, no data-dependent branch on the miss path.
                let slot = (hash as usize) & (SKELETON_SEEN_SLOTS - 1);
                std::mem::replace(&mut guard.seen[slot], hash) == hash
            };
            self.misses.fetch_add(1, Ordering::Relaxed);
            let built = Arc::new(PlanSkeleton::build(ctx, query));
            if admitted {
                self.admissions.fetch_add(1, Ordering::Relaxed);
                let mut guard = shard.lock().expect("skeleton shard poisoned");
                if guard.map.len() >= SKELETON_SHARD_CAP {
                    guard.map.clear();
                }
                // A racing builder may have inserted meanwhile; both
                // values are identical bits, so keeping either is correct.
                return Arc::clone(guard.map.entry(fp.clone()).or_insert(built));
            }
            built
        })
    }
}

impl PlanSkeleton {
    /// Builds the skeleton for `query`: every plan family enabled, no
    /// cache state consulted. Deterministic — two builds from the same
    /// context and query are identical.
    #[must_use]
    pub fn build(ctx: &PlannerContext<'_>, query: &Query) -> PlanSkeleton {
        let backend_est = ctx.estimator.backend_execution(ctx.schema, query);
        let (backend_cost, backend_breakdown) = ctx.estimator.price_execution(&backend_est);
        let (node_build_cost, node_build_time) = ctx.estimator.build_node();

        let mut variants = Vec::with_capacity(2);
        let scan: Vec<Option<usize>> = vec![None; query.accesses.len()];
        variants.push(build_variant(ctx, query, &scan));
        let picks: Vec<Option<usize>> = query
            .accesses
            .iter()
            .map(|a| best_index_for(ctx, a))
            .collect();
        if picks.iter().any(Option::is_some) {
            variants.push(build_variant(ctx, query, &picks));
        }

        let probe = ProbeTable::build(&variants);
        PlanSkeleton {
            backend_time: backend_est.time,
            backend_cost,
            backend_breakdown,
            node_build_cost,
            node_build_time,
            variants,
            probe,
        }
    }
}

/// Builds one variant's skeleton from its per-access index assignment
/// (positions into `ctx.candidates`).
fn build_variant(
    ctx: &PlannerContext<'_>,
    query: &Query,
    indexes: &[Option<usize>],
) -> VariantSkeleton {
    let idx_refs: Vec<Option<&IndexDef>> = indexes
        .iter()
        .map(|o| o.map(|pos| &ctx.candidates[pos]))
        .collect();
    let base = ctx
        .estimator
        .cache_execution_base(ctx.schema, query, &idx_refs);

    // Same uses order as the fused enumerator: accessed columns
    // deduplicated in first-seen order, then each assigned index.
    let mut uses: Vec<StructureKey> = Vec::new();
    let mut seen: Vec<ColumnId> = Vec::new();
    for access in &query.accesses {
        for &c in &access.columns {
            if !seen.contains(&c) {
                seen.push(c);
                uses.push(StructureKey::Column(c));
            }
        }
    }
    for idx in idx_refs.iter().flatten() {
        uses.push(StructureKey::Index(idx.id));
    }

    let builds: Vec<BuildShape> = uses
        .iter()
        .map(|&key| match key {
            StructureKey::Column(c) => {
                let (cost, time) = ctx.estimator.build_column(ctx.schema, c);
                BuildShape::Column { cost, time }
            }
            StructureKey::Index(id) => {
                let def = &ctx.candidates[id.index()];
                // With every key column reported cached, `build_index`
                // quotes the pure sort plan (no fetches).
                let (sort_cost, sort_time) = ctx.estimator.build_index(ctx.schema, def, |_| true);
                let keys = def
                    .key_columns
                    .iter()
                    .map(|&c| {
                        let (cost, time) = ctx.estimator.build_column(ctx.schema, c);
                        KeyFetch {
                            column: c,
                            cost,
                            time,
                        }
                    })
                    .collect();
                BuildShape::Index {
                    sort_cost,
                    sort_time,
                    keys,
                }
            }
            StructureKey::Node(_) => unreachable!("nodes are appended per node count"),
        })
        .collect();

    let mut cells = ExecCells::default();
    for &k in &ctx.estimator.params().node_options {
        let est = ctx.estimator.scale_cache_execution(&base, k);
        let (cost, breakdown) = ctx.estimator.price_execution(&est);
        cells.push(k, est.time, cost, breakdown);
    }

    VariantSkeleton {
        indexes: idx_refs.iter().map(|o| o.map(|i| i.id)).collect(),
        uses_indexes: idx_refs.iter().any(Option::is_some),
        uses,
        builds,
        cells,
    }
}

/// The per-node completion phase: binds a shared [`PlanSkeleton`] against
/// one node's cache state, emitting the full costed plan set into
/// caller-owned storage.
///
/// `price` quotes a structure's maintenance over a span (the estimator's
/// eq. 11/13/15) — the only cost-model access completion needs.
///
/// Bit-identical to [`enumerate_plans_into`] with the same cache, clock
/// and options: same plans, same order, same prices, and the same
/// per-plan missing-build quotes left in the buffer
/// ([`PlanBuffer::take_missing_costs`]).
///
/// [`enumerate_plans_into`]: crate::enumerate::enumerate_plans_into
///
/// # Panics
/// Panics if `opts.amortize_n == 0`.
pub fn complete_plans_into<F>(
    skel: &PlanSkeleton,
    cache: &CacheState,
    now: SimTime,
    opts: EnumerationOptions,
    price: F,
    buf: &mut PlanBuffer,
) where
    F: Fn(&CachedStructure, SimDuration) -> Money,
{
    assert!(opts.amortize_n > 0, "amortization horizon must be positive");
    buf.reclaim_in_place();

    // --- Backend plan (always P_exist). ---
    let mut shell = buf.shell();
    let recovered_shape = PlanBuffer::shape_vec(&mut shell);
    if recovered_shape.capacity() > 0 {
        buf.free_shapes.push(recovered_shape);
    }
    shell.shape = PlanShape::Backend;
    shell.exec_time = skel.backend_time;
    shell.exec_cost = skel.backend_cost;
    shell.exec_breakdown = skel.backend_breakdown;
    shell.uses.clear();
    shell.missing.clear();
    shell.build_cost = Money::ZERO;
    shell.build_time = SimDuration::ZERO;
    shell.amortized_cost = Money::ZERO;
    shell.maintenance_cost = Money::ZERO;
    shell.price = skel.backend_cost;
    buf.plans.push(shell);
    let backend_costs = buf.cost_vec();
    buf.missing_costs.push(backend_costs);

    for variant in &skel.variants {
        if variant.uses_indexes && !opts.allow_indexes {
            continue;
        }
        complete_variant(skel, variant, cache, now, opts, &price, buf);
    }
}

/// Emits one variant's cache plans at every allowed node count.
fn complete_variant<F>(
    skel: &PlanSkeleton,
    variant: &VariantSkeleton,
    cache: &CacheState,
    now: SimTime,
    opts: EnumerationOptions,
    price: &F,
    buf: &mut PlanBuffer,
) where
    F: Fn(&CachedStructure, SimDuration) -> Money,
{
    // Partition uses into existing vs missing against *this* cache.
    buf.data_missing.clear();
    buf.missing_pos.clear();
    buf.missing_cols.clear();
    for (pos, &key) in variant.uses.iter().enumerate() {
        if !cache.is_available(key, now) {
            buf.data_missing.push(key);
            buf.missing_pos.push(pos);
            if let StructureKey::Column(c) = key {
                buf.missing_cols.push(c);
            }
        }
    }

    // Quote each missing structure's build from its skeleton shape —
    // exactly what the fused enumerator's estimator calls would return.
    buf.data_missing_costs.clear();
    let mut data_build_cost = Money::ZERO;
    let mut data_build_time = SimDuration::ZERO;
    let mut data_missing_amort = Money::ZERO;
    for &pos in &buf.missing_pos {
        let (cost, time) = match &variant.builds[pos] {
            BuildShape::Column { cost, time } => (*cost, *time),
            BuildShape::Index {
                sort_cost,
                sort_time,
                keys,
            } => {
                let mut cost = *sort_cost;
                let mut fetch_time = SimDuration::ZERO;
                for kf in keys {
                    let covered = cache.contains(StructureKey::Column(kf.column))
                        || buf.missing_cols.contains(&kf.column);
                    if !covered {
                        cost += kf.cost;
                        if kf.time > fetch_time {
                            fetch_time = kf.time;
                        }
                    }
                }
                (cost, fetch_time + *sort_time)
            }
        };
        data_build_cost += cost;
        if time > data_build_time {
            data_build_time = time;
        }
        data_missing_amort += cost.amortize_over(opts.amortize_n);
        buf.data_missing_costs.push(cost);
    }

    // Existing data structures: pending installments and capped
    // maintenance backlog — must quote exactly what
    // `CacheState::settle_usage` will charge.
    let mut data_exist_amort = Money::ZERO;
    let mut data_maintenance = Money::ZERO;
    for &key in &variant.uses {
        if let Some(s) = cache.get(key) {
            if s.is_available(now) {
                data_exist_amort += s.amortization_due();
                let span = now
                    .saturating_since(s.maint_paid_until)
                    .min(opts.maint_window);
                data_maintenance += price(s, span);
            }
        }
    }

    let node_installment = skel.node_build_cost.amortize_over(opts.amortize_n);

    for cell in 0..variant.cells.len() {
        let k = variant.cells.nodes[cell];
        if k > 1 && !opts.allow_extra_nodes {
            continue;
        }

        let mut shell = buf.shell();
        let mut shape_indexes = PlanBuffer::shape_vec(&mut shell);
        if shape_indexes.capacity() == 0 {
            if let Some(pooled) = buf.free_shapes.pop() {
                shape_indexes = pooled;
            }
        }
        shape_indexes.extend_from_slice(&variant.indexes);

        shell.uses.clear();
        shell.uses.extend_from_slice(&variant.uses);
        shell.missing.clear();
        shell.missing.extend_from_slice(&buf.data_missing);
        let mut plan_costs = buf.cost_vec();
        plan_costs.extend_from_slice(&buf.data_missing_costs);

        let mut build_cost = data_build_cost;
        let mut build_time = data_build_time;
        let mut amortized = data_exist_amort + data_missing_amort;
        let mut maintenance = data_maintenance;
        for ordinal in 0..k.saturating_sub(1) {
            let key = StructureKey::Node(ordinal);
            shell.uses.push(key);
            match cache.get(key) {
                Some(s) if s.is_available(now) => {
                    amortized += s.amortization_due();
                    let span = now
                        .saturating_since(s.maint_paid_until)
                        .min(opts.maint_window);
                    maintenance += price(s, span);
                }
                _ => {
                    shell.missing.push(key);
                    build_cost += skel.node_build_cost;
                    if skel.node_build_time > build_time {
                        build_time = skel.node_build_time;
                    }
                    amortized += node_installment;
                    plan_costs.push(skel.node_build_cost);
                }
            }
        }

        shell.shape = PlanShape::Cache {
            indexes: shape_indexes,
            nodes: k,
        };
        shell.exec_time = variant.cells.time[cell];
        shell.exec_cost = variant.cells.cost[cell];
        shell.exec_breakdown = variant.cells.breakdown[cell];
        shell.build_cost = build_cost;
        shell.build_time = build_time;
        shell.amortized_cost = amortized;
        shell.maintenance_cost = maintenance;
        shell.price = variant.cells.cost[cell] + amortized + maintenance;
        buf.plans.push(shell);
        buf.missing_costs.push(plan_costs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{generate_candidates, CandidateIndex};
    use crate::enumerate::enumerate_plans_into;
    use crate::estimator::{CostParams, Estimator};
    use catalog::tpch::{tpch_schema, ScaleFactor};
    use catalog::Schema;
    use pricing::PriceCatalog;
    use simcore::NetworkModel;
    use std::sync::Arc;
    use workload::{paper_templates, WorkloadConfig, WorkloadGenerator};

    struct Fixture {
        schema: Arc<Schema>,
        candidates: Vec<IndexDef>,
        cand_index: CandidateIndex,
        estimator: Estimator,
    }

    impl Fixture {
        fn new() -> Self {
            let schema = Arc::new(tpch_schema(ScaleFactor(10.0)));
            let templates = paper_templates(&schema);
            let candidates = generate_candidates(&schema, &templates, 65);
            let cand_index = CandidateIndex::build(&schema, &candidates);
            let estimator = Estimator::new(
                CostParams::default(),
                PriceCatalog::ec2_2009(),
                NetworkModel::paper_sdss(),
            );
            Fixture {
                schema,
                candidates,
                cand_index,
                estimator,
            }
        }

        fn ctx(&self) -> PlannerContext<'_> {
            PlannerContext {
                schema: &self.schema,
                candidates: &self.candidates,
                cand_index: &self.cand_index,
                estimator: &self.estimator,
            }
        }

        fn query(&self, seed: u64) -> Query {
            WorkloadGenerator::new(Arc::clone(&self.schema), WorkloadConfig::default(), seed)
                .next_query()
        }
    }

    fn opts_grid() -> [EnumerationOptions; 4] {
        let base = EnumerationOptions::default();
        [
            base,
            EnumerationOptions {
                allow_indexes: false,
                ..base
            },
            EnumerationOptions {
                allow_extra_nodes: false,
                ..base
            },
            EnumerationOptions {
                allow_indexes: false,
                allow_extra_nodes: false,
                ..base
            },
        ]
    }

    #[test]
    fn split_matches_fused_on_a_cold_cache() {
        let f = Fixture::new();
        let ctx = f.ctx();
        for seed in 0..10 {
            let q = f.query(seed);
            let skel = PlanSkeleton::build(&ctx, &q);
            for opts in opts_grid() {
                let cache = CacheState::new();
                let mut fused = PlanBuffer::new();
                enumerate_plans_into(&ctx, &q, &cache, SimTime::ZERO, opts, &mut fused);
                let mut split = PlanBuffer::new();
                complete_plans_into(
                    &skel,
                    &cache,
                    SimTime::ZERO,
                    opts,
                    |s, span| f.estimator.maintenance(s, span),
                    &mut split,
                );
                assert_eq!(split.take(), fused.take(), "seed {seed}, opts {opts:?}");
                assert_eq!(split.take_missing_costs(), fused.take_missing_costs());
            }
        }
    }

    #[test]
    fn split_matches_fused_on_a_warm_cache() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let q = f.query(3);
        let mut cache = CacheState::new();
        // Cache some of the query's columns (one still in flight) plus a
        // candidate index, leaving others missing.
        for (i, c) in q.all_columns().enumerate() {
            if i % 2 == 0 {
                let build = SimDuration::from_secs(if i == 0 { 500.0 } else { 0.0 });
                cache.install(
                    StructureKey::Column(c),
                    f.schema.column_bytes(c),
                    SimTime::ZERO,
                    build,
                    Money::from_dollars(0.5),
                    100,
                );
            }
        }
        cache.install(
            StructureKey::Index(f.candidates[0].id),
            1_000,
            SimTime::ZERO,
            SimDuration::ZERO,
            Money::from_dollars(0.2),
            100,
        );
        cache.install(
            StructureKey::Node(0),
            0,
            SimTime::ZERO,
            SimDuration::ZERO,
            Money::from_cents(10),
            100,
        );
        let now = SimTime::from_secs(100.0);
        let skel = PlanSkeleton::build(&ctx, &q);
        for opts in opts_grid() {
            let mut fused = PlanBuffer::new();
            enumerate_plans_into(&ctx, &q, &cache, now, opts, &mut fused);
            let mut split = PlanBuffer::new();
            complete_plans_into(
                &skel,
                &cache,
                now,
                opts,
                |s, span| f.estimator.maintenance(s, span),
                &mut split,
            );
            assert_eq!(split.take(), fused.take(), "opts {opts:?}");
            assert_eq!(split.take_missing_costs(), fused.take_missing_costs());
        }
    }

    #[test]
    fn skeleton_cache_admits_on_second_sighting_and_hits_from_the_third() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let q = f.query(9);
        let cache = SkeletonCache::new();
        let first = cache.get_or_build(&ctx, &q);
        assert_eq!(cache.stats(), (0, 1), "first sighting builds, not stored");
        assert_eq!(cache.counters().admissions, 0);
        let second = cache.get_or_build(&ctx, &q);
        assert_eq!(cache.stats(), (0, 2), "second sighting builds and admits");
        assert_eq!(cache.counters().admissions, 1);
        let third = cache.get_or_build(&ctx, &q);
        assert_eq!(cache.stats(), (1, 2), "third sighting hits");
        assert_eq!(
            cache.counters(),
            SkeletonCacheCounters {
                hits: 1,
                misses: 2,
                admissions: 1
            }
        );
        assert_eq!(*first, *second);
        assert_eq!(*second, *third);
        // A different query resolves independently.
        let other = cache.get_or_build(&ctx, &f.query(10));
        assert_ne!(*other, *third);
    }

    #[test]
    fn lazy_skeleton_resolves_through_the_shared_cache() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let q = f.query(12);
        let cache = SkeletonCache::new();
        // Warm to admission.
        let _ = cache.get_or_build(&ctx, &q);
        let _ = cache.get_or_build(&ctx, &q);
        let lazy = LazySkeleton::with_cache(&ctx, &q, &cache);
        assert!(!lazy.is_built());
        let skel = Arc::clone(lazy.get());
        assert!(lazy.is_built());
        assert_eq!(cache.stats().0, 1, "the lazy build hit the shared cache");
        assert_eq!(*skel, PlanSkeleton::build(&ctx, &q));
    }

    #[test]
    fn skeleton_is_deterministic() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let q = f.query(7);
        assert_eq!(PlanSkeleton::build(&ctx, &q), PlanSkeleton::build(&ctx, &q));
    }

    #[test]
    fn skeleton_cells_cover_every_node_option() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let skel = PlanSkeleton::build(&ctx, &f.query(1));
        for v in &skel.variants {
            assert_eq!(v.cells.nodes, f.estimator.params().node_options);
            assert_eq!(v.cells.len(), v.cells.time.len());
            assert_eq!(v.cells.len(), v.cells.cost.len());
            assert_eq!(v.uses.len(), v.builds.len());
        }
    }
}
