//! The resource cost model — eqs. 8–15 of the paper.
//!
//! The estimator converts a query + plan shape into `(time, money)` using
//! the paper's formulas:
//!
//! * **eq. 8** (cache execution):
//!   `Ce_C = l_cpu · f_cpu · q_tot · c  +  f_io · io · io_tot`
//!   where `q_tot` is optimizer work units (we derive them analytically
//!   from catalog statistics — rows processed per `rows_per_unit`) and
//!   `io_tot` is logical page reads.
//! * **eq. 9** (backend + network):
//!   `Ce_N = Ce_B + f_n · (l + S(Q)/t) · c + S(Q) · c_b`.
//! * **eq. 10/11** (CPU node): `Build_N = b · u`, `Maint_N = c`/s.
//! * **eq. 12/13** (column): `Build_T = f_n · (l + size/t) · c + size · c_b`,
//!   `Maint_T = size · c_d`/s.
//! * **eq. 14/15** (index): `Build_I = Ce(sort plan) + Σ Build_T(missing)`,
//!   `Maint_I = size · c_d`/s.
//!
//! Wall-clock time is CPU time plus a disk-scan term (`bytes /
//! disk bandwidth`); multi-node plans scale by [`ParallelModel`].

use cache::{CachedStructure, IndexDef, ROW_LOCATOR_BYTES};
use catalog::Schema;
use metrics::{CostBreakdown, Resource};
use pricing::{Money, PriceCatalog};
use serde::{Deserialize, Serialize};
use simcore::{NetworkModel, SimDuration};
use workload::{Query, TableAccess};

use crate::scaling::ParallelModel;

/// Calibration constants of the cost model. Defaults reproduce the
/// experimental setup of Section VII-A.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostParams {
    /// CPU-node overload factor (`l_cpu`); the paper assumes nodes are
    /// never overloaded, i.e. 1.0.
    pub l_cpu: f64,
    /// Optimizer-units → CPU-seconds factor (`f_cpu`); the paper emulates
    /// SDSS response times with 0.014.
    pub f_cpu: f64,
    /// Fraction of a CPU consumed while a transfer is in flight (`f_n`);
    /// the paper uses 1.0.
    pub f_n: f64,
    /// Optimizer I/O units → physical I/O operations factor (`f_io`).
    pub f_io: f64,
    /// Rows of processing per optimizer work unit (`q_tot` denominator).
    pub rows_per_unit: f64,
    /// Average I/O unit for `io_tot` (bytes). 64 KiB reflects the mostly
    /// sequential large reads of a column scan; charging per 8 KiB random
    /// page would price scans an order of magnitude above what EBS-era
    /// clouds billed for sequential access.
    pub page_bytes: u64,
    /// Per-node sequential scan bandwidth (bytes/s) for the disk term of
    /// wall-clock time.
    pub disk_bytes_per_sec: f64,
    /// A full scan reads `min(1, sel × scan_cluster_factor)` of the
    /// driving columns (models clustering + block skipping); indexes read
    /// `sel` exactly.
    pub scan_cluster_factor: f64,
    /// Floor on the scanned fraction (even a perfectly clustered scan
    /// touches some data).
    pub min_scan_fraction: f64,
    /// CPU multiplier for sorting during index builds (eq. 14's sort plan).
    pub sort_cpu_factor: f64,
    /// Wall-clock and CPU slowdown of the shared back-end database
    /// relative to a dedicated cache node.
    pub backend_slowdown: f64,
    /// Multi-node scaling law.
    pub parallel: ParallelModel,
    /// Node counts the enumerator considers for parallel plans.
    pub node_options: Vec<u32>,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            l_cpu: 1.0,
            f_cpu: 0.014,
            f_n: 1.0,
            f_io: 1.0,
            rows_per_unit: 200_000.0,
            page_bytes: 65_536,
            disk_bytes_per_sec: 200e6,
            scan_cluster_factor: 20.0,
            min_scan_fraction: 1e-4,
            sort_cpu_factor: 2.0,
            backend_slowdown: 3.0,
            parallel: ParallelModel::paper_sdss(),
            node_options: vec![1, 3, 5],
        }
    }
}

impl CostParams {
    /// Validates all constants.
    ///
    /// # Errors
    /// Returns the offending field name.
    pub fn validate(&self) -> Result<(), &'static str> {
        let positive = [
            (self.l_cpu, "l_cpu"),
            (self.f_cpu, "f_cpu"),
            (self.f_io, "f_io"),
            (self.rows_per_unit, "rows_per_unit"),
            (self.disk_bytes_per_sec, "disk_bytes_per_sec"),
            (self.scan_cluster_factor, "scan_cluster_factor"),
            (self.sort_cpu_factor, "sort_cpu_factor"),
            (self.backend_slowdown, "backend_slowdown"),
        ];
        for (v, name) in positive {
            if !v.is_finite() || v <= 0.0 {
                return Err(name);
            }
        }
        if !self.f_n.is_finite() || self.f_n < 0.0 {
            return Err("f_n");
        }
        if self.page_bytes == 0 {
            return Err("page_bytes");
        }
        if !(0.0..=1.0).contains(&self.min_scan_fraction) {
            return Err("min_scan_fraction");
        }
        if self.node_options.is_empty() || self.node_options.contains(&0) {
            return Err("node_options");
        }
        Ok(())
    }
}

/// The node-count-independent part of a cache execution estimate (see
/// [`Estimator::cache_execution_base`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheExecBase {
    /// Single-node CPU seconds.
    pub cpu_1: f64,
    /// Logical I/O operations (node-count invariant: the same data is read).
    pub io_ops: f64,
    /// Single-node sequential-scan seconds.
    pub disk_secs: f64,
}

/// Resource usage of one execution, before pricing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecEstimate {
    /// Wall-clock execution time.
    pub time: SimDuration,
    /// Total CPU-seconds consumed (across all nodes involved).
    pub cpu_secs: f64,
    /// Logical I/O operations.
    pub io_ops: f64,
    /// Bytes moved over the WAN (backend plans only).
    pub wan_bytes: u64,
}

/// The cost model, bound to a schema, price catalog and network.
#[derive(Debug, Clone)]
pub struct Estimator {
    params: CostParams,
    prices: PriceCatalog,
    network: NetworkModel,
}

impl Estimator {
    /// Creates an estimator.
    ///
    /// # Panics
    /// Panics if `params` fail validation.
    #[must_use]
    pub fn new(params: CostParams, prices: PriceCatalog, network: NetworkModel) -> Self {
        if let Err(field) = params.validate() {
            panic!("invalid cost parameter `{field}`");
        }
        Estimator {
            params,
            prices,
            network,
        }
    }

    /// The calibration constants.
    #[must_use]
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// The price catalog.
    #[must_use]
    pub fn prices(&self) -> &PriceCatalog {
        &self.prices
    }

    /// The WAN model.
    #[must_use]
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Rows and bytes one table access reads under the given access path.
    ///
    /// With an index the access reads exactly `sel × rows` rows of its
    /// columns plus the index probe; a scan reads the clustered fraction.
    fn access_volume(
        &self,
        schema: &Schema,
        access: &TableAccess,
        index: Option<&IndexDef>,
    ) -> (f64, f64) {
        let rows = schema.table(access.table).row_count as f64;
        let width: u64 = access
            .columns
            .iter()
            .map(|&c| schema.column(c).byte_width())
            .sum();
        match index {
            Some(idx) => {
                debug_assert_eq!(idx.table, access.table, "index on wrong table");
                let picked = rows * access.selectivity;
                let entry = idx
                    .key_columns
                    .iter()
                    .map(|&c| schema.column(c).byte_width())
                    .sum::<u64>()
                    + ROW_LOCATOR_BYTES;
                // Probe reads the matching slice of the index, then fetches
                // the picked rows from the cached columns (index-covered
                // columns need no base fetch).
                let uncovered: u64 = access
                    .columns
                    .iter()
                    .filter(|c| !idx.key_columns.contains(c))
                    .map(|&c| schema.column(c).byte_width())
                    .sum();
                let bytes = picked * (entry as f64 + uncovered as f64);
                (picked, bytes)
            }
            None => {
                let fraction = (access.selectivity * self.params.scan_cluster_factor)
                    .max(self.params.min_scan_fraction)
                    .min(1.0);
                let scanned = rows * fraction;
                (scanned, scanned * width as f64)
            }
        }
    }

    /// Eq. 8: execution in the cache with per-access index assignment on
    /// `nodes` CPU nodes.
    ///
    /// # Panics
    /// Panics if `indexes.len() != query.accesses.len()` or `nodes == 0`.
    #[must_use]
    pub fn cache_execution(
        &self,
        schema: &Schema,
        query: &Query,
        indexes: &[Option<&IndexDef>],
        nodes: u32,
    ) -> ExecEstimate {
        let base = self.cache_execution_base(schema, query, indexes);
        self.scale_cache_execution(&base, nodes)
    }

    /// The node-count-independent half of eq. 8: data volumes, single-node
    /// CPU seconds, I/O operations and the disk-scan term. Enumeration
    /// computes this once per index assignment and derives the estimate at
    /// each node count via [`Self::scale_cache_execution`] — the per-node
    /// results are bit-identical to calling [`Self::cache_execution`]
    /// directly (same operations in the same order).
    ///
    /// # Panics
    /// Panics if `indexes.len() != query.accesses.len()`.
    #[must_use]
    pub fn cache_execution_base(
        &self,
        schema: &Schema,
        query: &Query,
        indexes: &[Option<&IndexDef>],
    ) -> CacheExecBase {
        assert_eq!(
            indexes.len(),
            query.accesses.len(),
            "one index slot per access"
        );
        let mut rows_total = 0.0;
        let mut bytes_total = 0.0;
        for (access, idx) in query.accesses.iter().zip(indexes) {
            let (r, b) = self.access_volume(schema, access, *idx);
            rows_total += r;
            bytes_total += b;
        }
        let q_tot = rows_total / self.params.rows_per_unit;
        let cpu_1 = self.params.l_cpu * self.params.f_cpu * q_tot;
        let io_ops = self.params.f_io * bytes_total / self.params.page_bytes as f64;
        let disk_secs = bytes_total / self.params.disk_bytes_per_sec;
        CacheExecBase {
            cpu_1,
            io_ops,
            disk_secs,
        }
    }

    /// Applies the multi-node scaling law to a precomputed base.
    ///
    /// # Panics
    /// Panics if `nodes == 0`.
    #[must_use]
    pub fn scale_cache_execution(&self, base: &CacheExecBase, nodes: u32) -> ExecEstimate {
        assert!(nodes >= 1, "need at least one node");
        let time_1 = base.cpu_1 + base.disk_secs;
        let time = time_1 * self.params.parallel.time_factor(nodes);
        let cpu_secs = base.cpu_1 * self.params.parallel.work_factor(nodes);
        ExecEstimate {
            time: SimDuration::from_secs(time),
            cpu_secs,
            io_ops: base.io_ops,
            wan_bytes: 0,
        }
    }

    /// Eq. 9: execution on the back-end plus result transfer.
    ///
    /// The back-end is a conventional *row store* owning the full schema
    /// with indexes: it locates `sel × rows` per access through an index
    /// but then reads entire rows (every column of the table), and both
    /// its wall-clock and its CPU are slowed by `backend_slowdown` (it is
    /// a shared, remote resource). The row-store / column-cache asymmetry
    /// is what makes column caching profitable — the same asymmetry
    /// bypass-yield exploits in the paper's baseline.
    #[must_use]
    pub fn backend_execution(&self, schema: &Schema, query: &Query) -> ExecEstimate {
        let mut rows_total = 0.0;
        let mut bytes_total = 0.0;
        for access in &query.accesses {
            let table = schema.table(access.table);
            let rows = table.row_count as f64;
            // Full row width: the row store reads whole tuples.
            let width: u64 = table
                .columns
                .iter()
                .map(|&c| schema.column(c).byte_width())
                .sum();
            let picked = rows * access.selectivity;
            rows_total += picked;
            bytes_total += picked * (width as f64 + ROW_LOCATOR_BYTES as f64);
        }
        let q_tot = rows_total / self.params.rows_per_unit;
        let cpu = self.params.l_cpu * self.params.f_cpu * q_tot * self.params.backend_slowdown;
        let io_ops = self.params.f_io * bytes_total / self.params.page_bytes as f64;
        let disk_secs = bytes_total / self.params.disk_bytes_per_sec * self.params.backend_slowdown;
        let transfer = self.network.transfer_time(query.result_bytes);
        // f_n of a CPU is busy for the duration of the transfer.
        let transfer_cpu = self.params.f_n * transfer.as_secs();
        ExecEstimate {
            time: SimDuration::from_secs(cpu + disk_secs + transfer.as_secs()),
            cpu_secs: cpu + transfer_cpu,
            io_ops,
            wan_bytes: query.result_bytes,
        }
    }

    /// Prices an execution estimate: money and per-resource breakdown.
    #[must_use]
    pub fn price_execution(&self, est: &ExecEstimate) -> (Money, CostBreakdown) {
        let rates = &self.prices.rates;
        let mut breakdown = CostBreakdown::ZERO;
        breakdown.add_to(Resource::Cpu, rates.cpu_cost(est.cpu_secs));
        breakdown.add_to(Resource::Io, rates.io_cost(est.io_ops));
        breakdown.add_to(Resource::Network, rates.transfer_cost(est.wan_bytes));
        (breakdown.total(), breakdown)
    }

    /// Eq. 10: `Build_N = b · u`. Returns (cost, boot time).
    #[must_use]
    pub fn build_node(&self) -> (Money, SimDuration) {
        let boot = self.prices.node_boot_secs;
        (
            self.prices.rates.cpu_cost(boot),
            SimDuration::from_secs(boot),
        )
    }

    /// Eq. 12: column build — transfer from the back-end. Returns
    /// (cost, transfer time).
    #[must_use]
    pub fn build_column(&self, schema: &Schema, column: catalog::ColumnId) -> (Money, SimDuration) {
        let size = schema.column_bytes(column);
        let transfer = self.network.transfer_time(size);
        let cpu = self.params.f_n * transfer.as_secs();
        let cost = self.prices.rates.cpu_cost(cpu) + self.prices.rates.transfer_cost(size);
        (cost, transfer)
    }

    /// Eq. 14: index build — sort of the keyed data plus any key columns
    /// that must first be fetched. `cached` reports whether each key
    /// column is already in the cache. Returns (cost, build time).
    #[must_use]
    pub fn build_index<F>(
        &self,
        schema: &Schema,
        index: &IndexDef,
        column_cached: F,
    ) -> (Money, SimDuration)
    where
        F: Fn(catalog::ColumnId) -> bool,
    {
        let rows = schema.table(index.table).row_count as f64;
        let entry_bytes = index.size_bytes(schema) as f64;
        // Sort plan: read the keyed data, sort it (CPU-heavy), write the
        // index. Modeled as eq. 8 with the sort CPU multiplier.
        let q_tot = rows / self.params.rows_per_unit * self.params.sort_cpu_factor;
        let cpu = self.params.l_cpu * self.params.f_cpu * q_tot;
        let io_ops = self.params.f_io * 2.0 * entry_bytes / self.params.page_bytes as f64;
        let sort_secs = cpu + 2.0 * entry_bytes / self.params.disk_bytes_per_sec;
        let mut cost = self.prices.rates.cpu_cost(cpu) + self.prices.rates.io_cost(io_ops);
        let mut fetch_time = SimDuration::ZERO;
        for &col in &index.key_columns {
            if !column_cached(col) {
                let (c, t) = self.build_column(schema, col);
                cost += c;
                // Fetches overlap each other but precede the sort.
                if t > fetch_time {
                    fetch_time = t;
                }
            }
        }
        (cost, fetch_time + SimDuration::from_secs(sort_secs))
    }

    /// Eq. 11 / 13 / 15: maintenance accrued by a structure over `span`.
    ///
    /// Nodes cost `c` per unit time; columns and indexes cost
    /// `size · c_d` per unit time.
    #[must_use]
    pub fn maintenance(&self, s: &CachedStructure, span: SimDuration) -> Money {
        if s.key.occupies_disk() {
            self.prices.rates.disk_cost(s.size_bytes, span.as_secs())
        } else {
            self.prices.rates.cpu_cost(span.as_secs())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::tpch::{tpch_schema, ScaleFactor};
    use std::sync::Arc;
    use workload::{WorkloadConfig, WorkloadGenerator};

    fn setup() -> (Arc<Schema>, Estimator, Query) {
        let schema = Arc::new(tpch_schema(ScaleFactor(10.0)));
        let est = Estimator::new(
            CostParams::default(),
            PriceCatalog::ec2_2009(),
            NetworkModel::paper_sdss(),
        );
        let mut gen = WorkloadGenerator::new(Arc::clone(&schema), WorkloadConfig::default(), 42);
        let q = gen.next_query();
        (schema, est, q)
    }

    fn first_index(_schema: &Schema, q: &Query) -> IndexDef {
        let pred = q.driving().predicate_columns[0];
        IndexDef {
            id: cache::IndexId(0),
            table: q.driving().table,
            key_columns: vec![pred],
        }
    }

    #[test]
    fn index_plans_beat_scans() {
        let (schema, est, mut q) = setup();
        // Force a selective query so the comparison is meaningful.
        q.accesses.truncate(1);
        q.accesses[0].selectivity = 1e-4;
        let idx = first_index(&schema, &q);
        let scan = est.cache_execution(&schema, &q, &[None], 1);
        let indexed = est.cache_execution(&schema, &q, &[Some(&idx)], 1);
        assert!(
            indexed.time < scan.time,
            "indexed {} !< scan {}",
            indexed.time,
            scan.time
        );
        assert!(indexed.io_ops < scan.io_ops);
    }

    #[test]
    fn parallelism_cuts_time_but_raises_cpu() {
        let (schema, est, q) = setup();
        let one = est.cache_execution(&schema, &q, &vec![None; q.accesses.len()], 1);
        let three = est.cache_execution(&schema, &q, &vec![None; q.accesses.len()], 3);
        assert!((three.time.as_secs() - one.time.as_secs() * 0.5).abs() < 1e-9);
        assert!((three.cpu_secs - one.cpu_secs * 1.25).abs() < 1e-9);
        assert_eq!(one.io_ops, three.io_ops, "same data is read");
    }

    #[test]
    fn backend_includes_result_transfer() {
        let (schema, est, mut q) = setup();
        q.result_bytes = 25_000_000 / 8; // exactly 1 second at 25 Mbps
        let b = est.backend_execution(&schema, &q);
        assert!(b.time.as_secs() > 1.0, "transfer included");
        assert_eq!(b.wan_bytes, q.result_bytes);
        // f_n = 1: a full CPU is busy during that 1s of transfer.
        let no_transfer = {
            let mut q2 = q.clone();
            q2.result_bytes = 0;
            est.backend_execution(&schema, &q2)
        };
        assert!((b.cpu_secs - no_transfer.cpu_secs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pricing_books_each_resource() {
        let (schema, est, q) = setup();
        let b = est.backend_execution(&schema, &q);
        let (total, breakdown) = est.price_execution(&b);
        assert_eq!(total, breakdown.total());
        assert!(breakdown.cpu.is_positive());
        assert!(breakdown.io.is_positive());
        assert!(breakdown.network.is_positive());
        assert!(breakdown.disk.is_zero(), "execution does not rent disk");
    }

    #[test]
    fn node_build_matches_eq10() {
        let (_, est, _) = setup();
        let (cost, boot) = est.build_node();
        // b = 60 s at $0.10/h.
        assert_eq!(boot.as_secs(), 60.0);
        assert_eq!(cost, Money::from_dollars(0.10 / 60.0));
    }

    #[test]
    fn column_build_matches_eq12() {
        let (schema, est, _) = setup();
        let col = schema.column_by_name("lineitem.l_shipdate").unwrap().id;
        let size = schema.column_bytes(col);
        let (cost, time) = est.build_column(&schema, col);
        let expected_time = size as f64 / (25e6 / 8.0);
        assert!((time.as_secs() - expected_time).abs() < 1e-6);
        let expected_cost =
            est.prices().rates.transfer_cost(size) + est.prices().rates.cpu_cost(expected_time);
        assert_eq!(cost, expected_cost);
    }

    #[test]
    fn index_build_charges_missing_columns() {
        let (schema, est, q) = setup();
        let idx = first_index(&schema, &q);
        let (cost_cached, t_cached) = est.build_index(&schema, &idx, |_| true);
        let (cost_missing, t_missing) = est.build_index(&schema, &idx, |_| false);
        assert!(cost_missing > cost_cached, "fetch adds cost");
        assert!(t_missing > t_cached, "fetch adds time");
    }

    #[test]
    fn maintenance_rates_by_structure_kind() {
        let (_, est, _) = setup();
        let disk_s = CachedStructure {
            key: cache::StructureKey::Column(catalog::ColumnId(0)),
            size_bytes: 1_000_000_000,
            built_at: simcore::SimTime::ZERO,
            available_at: simcore::SimTime::ZERO,
            last_used: simcore::SimTime::ZERO,
            maint_paid_until: simcore::SimTime::ZERO,
            build_cost: Money::ZERO,
            per_use_charge: Money::ZERO,
            unamortized: Money::ZERO,
            maint_forgiven: Money::ZERO,
        };
        let month = SimDuration::from_days(30.0);
        let m = est.maintenance(&disk_s, month);
        assert!((m.as_dollars() - 0.15).abs() < 1e-6, "1 GB-month = $0.15");
        let node_s = CachedStructure {
            key: cache::StructureKey::Node(0),
            size_bytes: 0,
            ..disk_s
        };
        let hour = SimDuration::from_hours(1.0);
        assert_eq!(est.maintenance(&node_s, hour), Money::from_dollars(0.10));
    }

    #[test]
    fn scan_fraction_floor_applies() {
        let (schema, est, mut q) = setup();
        q.accesses.truncate(1);
        q.accesses[0].selectivity = 1e-12; // below the floor
        let e = est.cache_execution(&schema, &q, &[None], 1);
        let rows = schema.table(q.accesses[0].table).row_count as f64;
        let min_rows = rows * est.params().min_scan_fraction;
        // io_ops implies bytes >= floor fraction.
        let width: u64 = q.accesses[0]
            .columns
            .iter()
            .map(|&c| schema.column(c).byte_width())
            .sum();
        let min_io = min_rows * width as f64 / est.params().page_bytes as f64;
        assert!(e.io_ops >= min_io * 0.999);
    }

    #[test]
    #[should_panic(expected = "invalid cost parameter")]
    fn invalid_params_rejected() {
        let p = CostParams {
            f_cpu: -1.0,
            ..CostParams::default()
        };
        let _ = Estimator::new(p, PriceCatalog::ec2_2009(), NetworkModel::paper_sdss());
    }

    #[test]
    fn params_validation_field_coverage() {
        let ok = CostParams::default();
        assert!(ok.validate().is_ok());
        let p = CostParams {
            node_options: vec![],
            ..CostParams::default()
        };
        assert_eq!(p.validate(), Err("node_options"));
        let p = CostParams {
            node_options: vec![0],
            ..CostParams::default()
        };
        assert_eq!(p.validate(), Err("node_options"));
        let p = CostParams {
            page_bytes: 0,
            ..CostParams::default()
        };
        assert_eq!(p.validate(), Err("page_bytes"));
        let p = CostParams {
            min_scan_fraction: 2.0,
            ..CostParams::default()
        };
        assert_eq!(p.validate(), Err("min_scan_fraction"));
        let p = CostParams {
            f_n: -0.1,
            ..CostParams::default()
        };
        assert_eq!(p.validate(), Err("f_n"));
    }
}
