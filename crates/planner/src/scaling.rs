//! Multi-node query scaling.
//!
//! Section VII-A of the paper: *"Query execution scaling to multiple CPU
//! nodes follows the scaling property of a prototypical SDSS query: a
//! query can be sped up 2× using only 25 % extra CPU overhead using 3 CPU
//! nodes in parallel."*
//!
//! We model this with the two standard laws and calibrate both constants
//! to that single published point:
//!
//! * wall-clock follows Amdahl's law, `time(k) = t₁ · ((1−p) + p/k)`;
//!   `time(3) = t₁/2` gives the parallel fraction `p = 0.75`;
//! * total CPU work grows linearly with extra nodes,
//!   `work(k) = w₁ · (1 + α(k−1))`; `work(3) = 1.25 · w₁` gives the
//!   coordination overhead `α = 0.125`.

use serde::{Deserialize, Serialize};

/// Calibrated parallel-execution model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParallelModel {
    /// Amdahl parallel fraction `p ∈ [0, 1]`.
    pub parallel_fraction: f64,
    /// Per-extra-node CPU overhead `α ≥ 0`.
    pub overhead_per_node: f64,
}

impl Default for ParallelModel {
    fn default() -> Self {
        Self::paper_sdss()
    }
}

impl ParallelModel {
    /// The paper's SDSS calibration (`p = 0.75`, `α = 0.125`).
    #[must_use]
    pub fn paper_sdss() -> Self {
        ParallelModel {
            parallel_fraction: 0.75,
            overhead_per_node: 0.125,
        }
    }

    /// Creates a model, validating parameter ranges.
    ///
    /// # Panics
    /// Panics if `p ∉ [0, 1]` or `α < 0`.
    #[must_use]
    pub fn new(parallel_fraction: f64, overhead_per_node: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&parallel_fraction),
            "parallel fraction {parallel_fraction} out of [0,1]"
        );
        assert!(
            overhead_per_node.is_finite() && overhead_per_node >= 0.0,
            "overhead must be non-negative"
        );
        ParallelModel {
            parallel_fraction,
            overhead_per_node,
        }
    }

    /// Wall-clock multiplier for `k` nodes (≤ 1, monotone non-increasing).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn time_factor(&self, k: u32) -> f64 {
        assert!(k >= 1, "need at least one node");
        let p = self.parallel_fraction;
        (1.0 - p) + p / f64::from(k)
    }

    /// Total-CPU-work multiplier for `k` nodes (≥ 1, monotone).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn work_factor(&self, k: u32) -> f64 {
        assert!(k >= 1, "need at least one node");
        1.0 + self.overhead_per_node * f64::from(k - 1)
    }

    /// Speed-up at `k` nodes (`1 / time_factor`).
    #[must_use]
    pub fn speedup(&self, k: u32) -> f64 {
        1.0 / self.time_factor(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_is_reproduced_exactly() {
        let m = ParallelModel::paper_sdss();
        assert!((m.speedup(3) - 2.0).abs() < 1e-12, "2x at 3 nodes");
        assert!((m.work_factor(3) - 1.25).abs() < 1e-12, "25% overhead");
    }

    #[test]
    fn single_node_is_identity() {
        let m = ParallelModel::paper_sdss();
        assert_eq!(m.time_factor(1), 1.0);
        assert_eq!(m.work_factor(1), 1.0);
        assert_eq!(m.speedup(1), 1.0);
    }

    #[test]
    fn time_monotone_decreasing_work_monotone_increasing() {
        let m = ParallelModel::paper_sdss();
        for k in 1..20 {
            assert!(m.time_factor(k + 1) < m.time_factor(k));
            assert!(m.work_factor(k + 1) > m.work_factor(k));
        }
    }

    #[test]
    fn amdahl_asymptote() {
        let m = ParallelModel::paper_sdss();
        // With p = 0.75 the best possible speedup is 4x.
        assert!(m.speedup(10_000) < 4.0);
        assert!(m.speedup(10_000) > 3.9);
    }

    #[test]
    fn fully_serial_never_speeds_up() {
        let m = ParallelModel::new(0.0, 0.1);
        assert_eq!(m.time_factor(8), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = ParallelModel::paper_sdss().time_factor(0);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn bad_fraction_rejected() {
        let _ = ParallelModel::new(1.5, 0.0);
    }
}
