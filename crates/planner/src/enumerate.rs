//! Plan enumeration: building `P_Q = P_exist ∪ P_pos` for a query.
//!
//! Section IV-B of the paper: *"Upon receiving an incoming query Q, the
//! cloud considers a set of plans `P_Q`. This set consists of two
//! non-overlapping subsets: the set of plans that include only existing
//! cache structures, `P_exist`, and the set of plans that include also
//! possible new cache structures, `P_pos`."*
//!
//! The enumerator emits:
//!
//! * the backend plan (always existing — the paper's users "accept query
//!   execution in the back-end");
//! * cache scan plans (columns only) at each node count;
//! * cache index plans (best applicable candidate per table access) at
//!   each node count.
//!
//! Any plan whose structures are not all available *now* carries them in
//! `missing` with their build cost/time — those plans are `P_pos` and feed
//! the regret ledger.

use cache::{CacheState, IndexDef, StructureKey};
use catalog::{ColumnId, Schema};
use pricing::Money;
use simcore::{SimDuration, SimTime};
use workload::{Query, TableAccess};

use crate::estimator::Estimator;
use crate::plan::{PlanShape, QueryPlan};

/// What the active caching policy lets the enumerator consider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerationOptions {
    /// Consider index plans (econ-cheap / econ-fast; econ-col and the
    /// net-only baseline forbid them — Section VII-A).
    pub allow_indexes: bool,
    /// Consider multi-node parallel plans (econ-fast's lever).
    pub allow_extra_nodes: bool,
    /// Amortisation horizon `n` (eq. 7) applied to newly built structures.
    pub amortize_n: u64,
    /// Per-plan maintenance backlog cap: a selected plan pays for at most
    /// this much accrual per structure (older backlog is written off —
    /// see `cache::CacheState::settle_maintenance`).
    pub maint_window: SimDuration,
}

impl Default for EnumerationOptions {
    fn default() -> Self {
        EnumerationOptions {
            allow_indexes: true,
            allow_extra_nodes: true,
            amortize_n: 500,
            maint_window: SimDuration::from_secs(600.0),
        }
    }
}

/// Everything enumeration needs that outlives a single query.
#[derive(Debug, Clone, Copy)]
pub struct PlannerContext<'a> {
    /// The backend schema.
    pub schema: &'a Schema,
    /// Candidate indexes (the "65 from DB2" set).
    pub candidates: &'a [IndexDef],
    /// The cost model.
    pub estimator: &'a Estimator,
}

/// Picks the candidate index that minimises the access's read volume, if
/// any candidate serves one of its predicates.
fn best_index_for<'a>(ctx: &PlannerContext<'a>, access: &TableAccess) -> Option<&'a IndexDef> {
    let mut best: Option<(&IndexDef, f64)> = None;
    for idx in ctx.candidates {
        if idx.table != access.table {
            continue;
        }
        if !access
            .predicate_columns
            .iter()
            .any(|&p| idx.serves_predicate(p))
        {
            continue;
        }
        // Score: bytes read through this index (entry + uncovered fetch).
        let rows = ctx.schema.table(access.table).row_count as f64;
        let entry: u64 = idx
            .key_columns
            .iter()
            .map(|&c| ctx.schema.column(c).byte_width())
            .sum::<u64>()
            + cache::ROW_LOCATOR_BYTES;
        let uncovered: u64 = access
            .columns
            .iter()
            .filter(|c| !idx.key_columns.contains(c))
            .map(|&c| ctx.schema.column(c).byte_width())
            .sum();
        let bytes = rows * access.selectivity * (entry + uncovered) as f64;
        match best {
            Some((_, b)) if b <= bytes => {}
            _ => best = Some((idx, bytes)),
        }
    }
    best.map(|(idx, _)| idx)
}

/// Enumerates all plans for `query` against the current cache state.
///
/// Returned plans are *not* yet skyline-filtered; the economy applies
/// [`crate::skyline_filter`] after the policy's own filtering.
#[must_use]
pub fn enumerate_plans(
    ctx: &PlannerContext<'_>,
    query: &Query,
    cache: &CacheState,
    now: SimTime,
    opts: EnumerationOptions,
) -> Vec<QueryPlan> {
    assert!(opts.amortize_n > 0, "amortization horizon must be positive");
    let mut plans = Vec::with_capacity(2 * ctx.estimator.params().node_options.len() + 1);

    // --- Backend plan (always P_exist). ---
    let backend_est = ctx.estimator.backend_execution(ctx.schema, query);
    let (backend_cost, backend_breakdown) = ctx.estimator.price_execution(&backend_est);
    plans.push(QueryPlan {
        shape: PlanShape::Backend,
        exec_time: backend_est.time,
        exec_cost: backend_cost,
        exec_breakdown: backend_breakdown,
        uses: vec![],
        missing: vec![],
        build_cost: Money::ZERO,
        build_time: SimDuration::ZERO,
        amortized_cost: Money::ZERO,
        maintenance_cost: Money::ZERO,
        price: backend_cost,
    });

    // --- Cache plans. ---
    let index_variants: Vec<Vec<Option<&IndexDef>>> = {
        let scan_only: Vec<Option<&IndexDef>> = vec![None; query.accesses.len()];
        let mut variants = vec![scan_only];
        if opts.allow_indexes {
            let indexed: Vec<Option<&IndexDef>> = query
                .accesses
                .iter()
                .map(|a| best_index_for(ctx, a))
                .collect();
            if indexed.iter().any(Option::is_some) {
                variants.push(indexed);
            }
        }
        variants
    };

    for indexes in &index_variants {
        for &k in &ctx.estimator.params().node_options {
            if k > 1 && !opts.allow_extra_nodes {
                continue;
            }
            plans.push(cache_plan(ctx, query, cache, now, opts, indexes, k));
        }
    }
    plans
}

/// Builds one fully costed cache plan.
fn cache_plan(
    ctx: &PlannerContext<'_>,
    query: &Query,
    cache: &CacheState,
    now: SimTime,
    opts: EnumerationOptions,
    indexes: &[Option<&IndexDef>],
    nodes: u32,
) -> QueryPlan {
    let est = ctx
        .estimator
        .cache_execution(ctx.schema, query, indexes, nodes);
    let (exec_cost, exec_breakdown) = ctx.estimator.price_execution(&est);

    // Structures employed: every accessed column, each assigned index, and
    // the extra nodes beyond the base one.
    let mut uses: Vec<StructureKey> = Vec::new();
    let mut seen_cols: Vec<ColumnId> = Vec::new();
    for access in &query.accesses {
        for &c in &access.columns {
            if !seen_cols.contains(&c) {
                seen_cols.push(c);
                uses.push(StructureKey::Column(c));
            }
        }
    }
    for idx in indexes.iter().flatten() {
        uses.push(StructureKey::Index(idx.id));
        // Index keys that are not projected still need... nothing: the
        // index itself materialises them. (Covered columns read from it.)
    }
    for ordinal in 0..nodes.saturating_sub(1) {
        uses.push(StructureKey::Node(ordinal));
    }

    // Split into existing (available now) vs missing.
    let mut missing: Vec<StructureKey> = Vec::new();
    for &key in &uses {
        if !cache.is_available(key, now) {
            missing.push(key);
        }
    }

    // Build cost/time for the missing set. Builds run concurrently, so the
    // build time is the max; index builds treat columns that are being
    // fetched by this same plan as present (no double fetch charge).
    let missing_cols: Vec<ColumnId> = missing
        .iter()
        .filter_map(|k| match k {
            StructureKey::Column(c) => Some(*c),
            _ => None,
        })
        .collect();
    let mut build_cost = Money::ZERO;
    let mut build_time = SimDuration::ZERO;
    for &key in &missing {
        let (cost, time) = match key {
            StructureKey::Column(c) => ctx.estimator.build_column(ctx.schema, c),
            StructureKey::Index(id) => {
                let def = &ctx.candidates[id.index()];
                ctx.estimator.build_index(ctx.schema, def, |c| {
                    cache.contains(StructureKey::Column(c)) || missing_cols.contains(&c)
                })
            }
            StructureKey::Node(_) => ctx.estimator.build_node(),
        };
        build_cost += cost;
        if time > build_time {
            build_time = time;
        }
    }

    // Amortisation: existing structures charge their pending installment;
    // missing ones would charge their first installment (build / n).
    let mut amortized = Money::ZERO;
    for &key in &uses {
        if let Some(s) = cache.get(key) {
            if s.is_available(now) {
                amortized += s.amortization_due();
            }
        }
    }
    for &key in &missing {
        let this_build = match key {
            StructureKey::Column(c) => ctx.estimator.build_column(ctx.schema, c).0,
            StructureKey::Index(id) => {
                let def = &ctx.candidates[id.index()];
                ctx.estimator
                    .build_index(ctx.schema, def, |c| {
                        cache.contains(StructureKey::Column(c)) || missing_cols.contains(&c)
                    })
                    .0
            }
            StructureKey::Node(_) => ctx.estimator.build_node().0,
        };
        amortized += this_build.amortize_over(opts.amortize_n);
    }

    // Maintenance accrued since each used existing structure last paid
    // (footnote 3), capped at the backlog window — must quote exactly what
    // `CacheState::settle_maintenance` will charge. Missing structures owe
    // none yet.
    let mut maintenance = Money::ZERO;
    for &key in &uses {
        if let Some(s) = cache.get(key) {
            if s.is_available(now) {
                let span = now
                    .saturating_since(s.maint_paid_until)
                    .min(opts.maint_window);
                maintenance += ctx.estimator.maintenance(s, span);
            }
        }
    }

    let price = exec_cost + amortized + maintenance;
    QueryPlan {
        shape: PlanShape::Cache {
            indexes: indexes.iter().map(|o| o.map(|i| i.id)).collect(),
            nodes,
        },
        exec_time: est.time,
        exec_cost,
        exec_breakdown,
        uses,
        missing,
        build_cost,
        build_time,
        amortized_cost: amortized,
        maintenance_cost: maintenance,
        price,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::generate_candidates;
    use crate::estimator::CostParams;
    use catalog::tpch::{tpch_schema, ScaleFactor};
    use pricing::PriceCatalog;
    use simcore::NetworkModel;
    use std::sync::Arc;
    use workload::{paper_templates, WorkloadConfig, WorkloadGenerator};

    struct Fixture {
        schema: Arc<Schema>,
        candidates: Vec<IndexDef>,
        estimator: Estimator,
    }

    impl Fixture {
        fn new() -> Self {
            let schema = Arc::new(tpch_schema(ScaleFactor(10.0)));
            let templates = paper_templates(&schema);
            let candidates = generate_candidates(&schema, &templates, 65);
            let estimator = Estimator::new(
                CostParams::default(),
                PriceCatalog::ec2_2009(),
                NetworkModel::paper_sdss(),
            );
            Fixture {
                schema,
                candidates,
                estimator,
            }
        }

        fn ctx(&self) -> PlannerContext<'_> {
            PlannerContext {
                schema: &self.schema,
                candidates: &self.candidates,
                estimator: &self.estimator,
            }
        }

        fn query(&self, seed: u64) -> Query {
            WorkloadGenerator::new(Arc::clone(&self.schema), WorkloadConfig::default(), seed)
                .next_query()
        }
    }

    #[test]
    fn backend_plan_always_present_and_existing() {
        let f = Fixture::new();
        let q = f.query(1);
        let plans = enumerate_plans(
            &f.ctx(),
            &q,
            &CacheState::new(),
            SimTime::ZERO,
            EnumerationOptions::default(),
        );
        let backend: Vec<&QueryPlan> = plans
            .iter()
            .filter(|p| p.shape == PlanShape::Backend)
            .collect();
        assert_eq!(backend.len(), 1);
        assert!(backend[0].is_existing());
        assert!(backend[0].price.is_positive());
    }

    #[test]
    fn cold_cache_makes_cache_plans_possible_not_existing() {
        let f = Fixture::new();
        let q = f.query(2);
        let plans = enumerate_plans(
            &f.ctx(),
            &q,
            &CacheState::new(),
            SimTime::ZERO,
            EnumerationOptions::default(),
        );
        for p in plans.iter().filter(|p| p.shape != PlanShape::Backend) {
            assert!(!p.is_existing(), "cold cache: {:?}", p.shape);
            assert!(p.build_cost.is_positive());
            assert!(!p.build_time.is_zero());
        }
    }

    #[test]
    fn node_counts_follow_options() {
        let f = Fixture::new();
        let q = f.query(3);
        let all = enumerate_plans(
            &f.ctx(),
            &q,
            &CacheState::new(),
            SimTime::ZERO,
            EnumerationOptions::default(),
        );
        let max_nodes = all.iter().map(|p| p.shape.cache_nodes()).max().unwrap();
        assert_eq!(max_nodes, 5, "node_options = [1,3,5]");

        let no_parallel = enumerate_plans(
            &f.ctx(),
            &q,
            &CacheState::new(),
            SimTime::ZERO,
            EnumerationOptions {
                allow_extra_nodes: false,
                ..EnumerationOptions::default()
            },
        );
        assert!(no_parallel.iter().all(|p| p.shape.cache_nodes() <= 1));
    }

    #[test]
    fn index_plans_obey_the_policy_switch() {
        let f = Fixture::new();
        let q = f.query(4);
        let with = enumerate_plans(
            &f.ctx(),
            &q,
            &CacheState::new(),
            SimTime::ZERO,
            EnumerationOptions::default(),
        );
        assert!(with.iter().any(|p| p.shape.uses_indexes()));
        let without = enumerate_plans(
            &f.ctx(),
            &q,
            &CacheState::new(),
            SimTime::ZERO,
            EnumerationOptions {
                allow_indexes: false,
                ..EnumerationOptions::default()
            },
        );
        assert!(without.iter().all(|p| !p.shape.uses_indexes()));
    }

    #[test]
    fn warm_cache_moves_plans_to_exist() {
        let f = Fixture::new();
        let q = f.query(5);
        let mut cache = CacheState::new();
        let now = SimTime::from_secs(100.0);
        for c in q.all_columns() {
            let size = f.schema.column_bytes(c);
            cache.install(
                StructureKey::Column(c),
                size,
                SimTime::ZERO,
                SimDuration::ZERO,
                Money::from_dollars(1.0),
                100,
            );
        }
        let plans = enumerate_plans(&f.ctx(), &q, &cache, now, EnumerationOptions::default());
        let scan_1 = plans
            .iter()
            .find(|p| {
                matches!(&p.shape, PlanShape::Cache { indexes, nodes: 1 }
                    if indexes.iter().all(Option::is_none))
            })
            .expect("scan plan");
        assert!(scan_1.is_existing(), "all columns cached");
        assert!(
            scan_1.amortized_cost.is_positive(),
            "installments due on fresh structures"
        );
        assert!(
            scan_1.maintenance_cost.is_positive(),
            "100 s of disk maintenance accrued"
        );
        assert_eq!(
            scan_1.price,
            scan_1.exec_cost + scan_1.amortized_cost + scan_1.maintenance_cost
        );
    }

    #[test]
    fn structures_still_building_stay_missing() {
        let f = Fixture::new();
        let q = f.query(6);
        let mut cache = CacheState::new();
        let col = q.all_columns().next().unwrap();
        cache.install(
            StructureKey::Column(col),
            100,
            SimTime::ZERO,
            SimDuration::from_secs(1_000.0), // becomes available at t=1000
            Money::ZERO,
            10,
        );
        let plans = enumerate_plans(
            &f.ctx(),
            &q,
            &cache,
            SimTime::from_secs(10.0),
            EnumerationOptions::default(),
        );
        for p in plans.iter().filter(|p| p.shape != PlanShape::Backend) {
            assert!(
                p.missing.contains(&StructureKey::Column(col)),
                "in-flight builds are not usable"
            );
        }
    }

    #[test]
    fn faster_plans_cost_more_cpu_money() {
        let f = Fixture::new();
        let q = f.query(7);
        let plans = enumerate_plans(
            &f.ctx(),
            &q,
            &CacheState::new(),
            SimTime::ZERO,
            EnumerationOptions::default(),
        );
        let scan = |k: u32| {
            plans
                .iter()
                .find(|p| {
                    matches!(&p.shape, PlanShape::Cache { indexes, nodes }
                        if *nodes == k && indexes.iter().all(Option::is_none))
                })
                .unwrap()
        };
        let (s1, s3) = (scan(1), scan(3));
        assert!(s3.exec_time < s1.exec_time, "3 nodes are faster");
        assert!(
            s3.exec_breakdown.cpu > s1.exec_breakdown.cpu,
            "parallel overhead costs CPU money"
        );
    }

    #[test]
    fn uses_lists_are_duplicate_free() {
        let f = Fixture::new();
        for seed in 0..20 {
            let q = f.query(seed);
            let plans = enumerate_plans(
                &f.ctx(),
                &q,
                &CacheState::new(),
                SimTime::ZERO,
                EnumerationOptions::default(),
            );
            for p in &plans {
                let mut u = p.uses.clone();
                u.sort();
                u.dedup();
                assert_eq!(u.len(), p.uses.len(), "duplicate in uses: {:?}", p.uses);
                for m in &p.missing {
                    assert!(p.uses.contains(m), "missing ⊆ uses violated");
                }
            }
        }
    }
}
