//! Plan enumeration: building `P_Q = P_exist ∪ P_pos` for a query.
//!
//! Section IV-B of the paper: *"Upon receiving an incoming query Q, the
//! cloud considers a set of plans `P_Q`. This set consists of two
//! non-overlapping subsets: the set of plans that include only existing
//! cache structures, `P_exist`, and the set of plans that include also
//! possible new cache structures, `P_pos`."*
//!
//! The enumerator emits:
//!
//! * the backend plan (always existing — the paper's users "accept query
//!   execution in the back-end");
//! * cache scan plans (columns only) at each node count;
//! * cache index plans (best applicable candidate per table access) at
//!   each node count.
//!
//! Any plan whose structures are not all available *now* carries them in
//! `missing` with their build cost/time — those plans are `P_pos` and feed
//! the regret ledger.

use cache::{CacheState, IndexDef, StructureKey};
use catalog::{ColumnId, Schema};
use pricing::Money;
use simcore::{SimDuration, SimTime};
use workload::{Query, TableAccess};

use crate::candidates::CandidateIndex;
use crate::estimator::Estimator;
use crate::plan::{PlanShape, QueryPlan};

/// What the active caching policy lets the enumerator consider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerationOptions {
    /// Consider index plans (econ-cheap / econ-fast; econ-col and the
    /// net-only baseline forbid them — Section VII-A).
    pub allow_indexes: bool,
    /// Consider multi-node parallel plans (econ-fast's lever).
    pub allow_extra_nodes: bool,
    /// Amortisation horizon `n` (eq. 7) applied to newly built structures.
    pub amortize_n: u64,
    /// Per-plan maintenance backlog cap: a selected plan pays for at most
    /// this much accrual per structure (older backlog is written off —
    /// see `cache::CacheState::settle_maintenance`).
    pub maint_window: SimDuration,
}

impl Default for EnumerationOptions {
    fn default() -> Self {
        EnumerationOptions {
            allow_indexes: true,
            allow_extra_nodes: true,
            amortize_n: 500,
            maint_window: SimDuration::from_secs(600.0),
        }
    }
}

/// Everything enumeration needs that outlives a single query.
#[derive(Debug, Clone, Copy)]
pub struct PlannerContext<'a> {
    /// The backend schema.
    pub schema: &'a Schema,
    /// Candidate indexes (the "65 from DB2" set).
    pub candidates: &'a [IndexDef],
    /// Prebuilt per-table view of `candidates` (must be built over the
    /// same slice — see [`CandidateIndex::build`]).
    pub cand_index: &'a CandidateIndex,
    /// The cost model.
    pub estimator: &'a Estimator,
}

/// Picks the candidate index (position in `ctx.candidates`) that minimises
/// the access's read volume, if any candidate serves one of its
/// predicates. Consults only the access's table via the prebuilt
/// [`CandidateIndex`]; within a table, candidates are scored in registry
/// order, so ties resolve exactly as a full registry scan would.
///
/// Cache-independent — shared with the skeleton builder
/// (`crate::skeleton`), which must pick exactly the same variants.
pub(crate) fn best_index_for(ctx: &PlannerContext<'_>, access: &TableAccess) -> Option<usize> {
    let rows = ctx.schema.table(access.table).row_count as f64;
    let mut best: Option<(usize, f64)> = None;
    for tc in ctx.cand_index.for_table(access.table) {
        let idx = &ctx.candidates[tc.pos];
        if !access
            .predicate_columns
            .iter()
            .any(|&p| idx.serves_predicate(p))
        {
            continue;
        }
        // Score: bytes read through this index (entry + uncovered fetch).
        let uncovered: u64 = access
            .columns
            .iter()
            .filter(|c| !idx.key_columns.contains(c))
            .map(|&c| ctx.schema.column(c).byte_width())
            .sum();
        let bytes = rows * access.selectivity * (tc.entry_bytes + uncovered) as f64;
        match best {
            Some((_, b)) if b <= bytes => {}
            _ => best = Some((tc.pos, bytes)),
        }
    }
    best.map(|(pos, _)| pos)
}

/// Caller-owned storage for plan enumeration.
///
/// Enumeration is the per-query hot path; allocating a fresh
/// `Vec<QueryPlan>` (plus one `uses`, `missing` and shape vector per plan)
/// for every arriving query dominated the allocator profile at
/// million-query scale. A `PlanBuffer` recycles those allocations: plans
/// returned to the buffer (via [`PlanBuffer::recycle`]) become shells
/// whose vectors are cleared and refilled by the next enumeration.
#[derive(Debug, Default)]
pub struct PlanBuffer {
    pub(crate) plans: Vec<QueryPlan>,
    free: Vec<QueryPlan>,
    spare: Option<Vec<QueryPlan>>,
    pub(crate) missing_costs: Vec<Vec<Money>>,
    free_costs: Vec<Vec<Money>>,
    spare_costs: Option<Vec<Vec<Money>>>,
    pub(crate) free_shapes: Vec<Vec<Option<cache::IndexId>>>,
    seen_cols: Vec<ColumnId>,
    indexed: Vec<Option<usize>>,
    scan_slots: Vec<Option<usize>>,
    data_uses: Vec<StructureKey>,
    pub(crate) data_missing: Vec<StructureKey>,
    pub(crate) data_missing_costs: Vec<Money>,
    pub(crate) missing_cols: Vec<ColumnId>,
    /// Positions (into a skeleton variant's `uses`) of the missing
    /// structures — completion scratch (`crate::skeleton`).
    pub(crate) missing_pos: Vec<usize>,
}

impl PlanBuffer {
    /// Empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the enumerated plans, leaving the buffer ready for reuse.
    #[must_use]
    pub fn take(&mut self) -> Vec<QueryPlan> {
        std::mem::replace(&mut self.plans, self.spare.take().unwrap_or_default())
    }

    /// Returns a previously taken plan vector so its allocations (the
    /// vector itself and each plan's inner vectors) feed future
    /// enumerations instead of the allocator.
    pub fn recycle(&mut self, mut plans: Vec<QueryPlan>) {
        self.free.append(&mut plans);
        if self.spare.is_none() || self.spare.as_ref().is_some_and(|s| s.capacity() == 0) {
            self.spare = Some(plans);
        }
    }

    /// Reclaims any plans still held by the buffer as shells, in place —
    /// preserving `plans`' backing capacity for the pushes that follow
    /// (swapping the vector out would leak its capacity to the spare
    /// slot and force this enumeration to regrow from zero).
    pub(crate) fn reclaim_in_place(&mut self) {
        self.free.append(&mut self.plans);
        self.free_costs.append(&mut self.missing_costs);
    }

    /// Takes the per-plan missing-structure build quotes recorded by the
    /// last [`enumerate_plans_into`] call, parallel to the plan vector
    /// (entry `i` aligns with plan `i`'s `missing` list). Plan
    /// memoization stores these so amortisation installments can be
    /// re-derived under a different horizon without re-quoting builds.
    #[must_use]
    pub fn take_missing_costs(&mut self) -> Vec<Vec<Money>> {
        std::mem::replace(
            &mut self.missing_costs,
            self.spare_costs.take().unwrap_or_default(),
        )
    }

    /// Returns a previously taken missing-cost table for reuse.
    pub fn recycle_missing_costs(&mut self, mut costs: Vec<Vec<Money>>) {
        self.free_costs.append(&mut costs);
        if self.spare_costs.is_none() {
            self.spare_costs = Some(costs);
        }
    }

    /// A pooled per-plan cost vector.
    pub(crate) fn cost_vec(&mut self) -> Vec<Money> {
        let mut v = self.free_costs.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// A plan shell to overwrite: recycled if available, fresh otherwise.
    pub(crate) fn shell(&mut self) -> QueryPlan {
        self.free.pop().unwrap_or_else(|| QueryPlan {
            shape: PlanShape::Backend,
            exec_time: SimDuration::ZERO,
            exec_cost: Money::ZERO,
            exec_breakdown: metrics::CostBreakdown::ZERO,
            uses: Vec::new(),
            missing: Vec::new(),
            build_cost: Money::ZERO,
            build_time: SimDuration::ZERO,
            amortized_cost: Money::ZERO,
            maintenance_cost: Money::ZERO,
            price: Money::ZERO,
        })
    }

    /// Recovers the index-slot vector from a shell's shape for reuse.
    pub(crate) fn shape_vec(shell: &mut QueryPlan) -> Vec<Option<cache::IndexId>> {
        match std::mem::replace(&mut shell.shape, PlanShape::Backend) {
            PlanShape::Cache { mut indexes, .. } => {
                indexes.clear();
                indexes
            }
            PlanShape::Backend => Vec::new(),
        }
    }
}

/// Enumerates all plans for `query` against the current cache state.
///
/// Returned plans are *not* yet skyline-filtered; the economy applies
/// [`crate::skyline_filter`] after the policy's own filtering.
///
/// Convenience wrapper over [`enumerate_plans_into`] that allocates a
/// fresh buffer; hot paths should own a [`PlanBuffer`] instead.
#[must_use]
pub fn enumerate_plans(
    ctx: &PlannerContext<'_>,
    query: &Query,
    cache: &CacheState,
    now: SimTime,
    opts: EnumerationOptions,
) -> Vec<QueryPlan> {
    let mut buf = PlanBuffer::new();
    enumerate_plans_into(ctx, query, cache, now, opts, &mut buf);
    buf.take()
}

/// Enumerates all plans for `query` into caller-owned storage.
///
/// Identical results to [`enumerate_plans`] (same plans, same order, same
/// bits), but every vector involved is recycled through `buf`. Per index
/// variant the enumerator computes the data volumes, the structure set and
/// the build quotes once, then derives each node count from them — the
/// seed implementation re-estimated the volumes per node count and quoted
/// every missing structure's build twice (once for the plan's build cost,
/// once for its amortisation installment).
///
/// # Panics
/// Panics if `opts.amortize_n == 0`.
pub fn enumerate_plans_into(
    ctx: &PlannerContext<'_>,
    query: &Query,
    cache: &CacheState,
    now: SimTime,
    opts: EnumerationOptions,
    buf: &mut PlanBuffer,
) {
    assert!(opts.amortize_n > 0, "amortization horizon must be positive");
    buf.reclaim_in_place();

    // --- Backend plan (always P_exist). ---
    let backend_est = ctx.estimator.backend_execution(ctx.schema, query);
    let (backend_cost, backend_breakdown) = ctx.estimator.price_execution(&backend_est);
    let mut shell = buf.shell();
    let recovered_shape = PlanBuffer::shape_vec(&mut shell);
    if recovered_shape.capacity() > 0 {
        buf.free_shapes.push(recovered_shape);
    }
    shell.shape = PlanShape::Backend;
    shell.exec_time = backend_est.time;
    shell.exec_cost = backend_cost;
    shell.exec_breakdown = backend_breakdown;
    shell.uses.clear();
    shell.missing.clear();
    shell.build_cost = Money::ZERO;
    shell.build_time = SimDuration::ZERO;
    shell.amortized_cost = Money::ZERO;
    shell.maintenance_cost = Money::ZERO;
    shell.price = backend_cost;
    buf.plans.push(shell);
    let backend_costs = buf.cost_vec();
    buf.missing_costs.push(backend_costs);

    // --- Cache plans: the scan-only variant, plus the best-index variant
    // when the policy allows indexes and any access has a serving
    // candidate. ---
    buf.scan_slots.clear();
    buf.scan_slots.resize(query.accesses.len(), None);
    let scan_only = std::mem::take(&mut buf.scan_slots);
    cache_variant_plans(ctx, query, cache, now, opts, &scan_only, buf);
    buf.scan_slots = scan_only;
    if opts.allow_indexes {
        buf.indexed.clear();
        for a in &query.accesses {
            let pick = best_index_for(ctx, a);
            buf.indexed.push(pick);
        }
        if buf.indexed.iter().any(Option::is_some) {
            let indexed = std::mem::take(&mut buf.indexed);
            cache_variant_plans(ctx, query, cache, now, opts, &indexed, buf);
            buf.indexed = indexed;
        }
    }
}

/// Emits the cache plans of one index variant at every allowed node count.
fn cache_variant_plans(
    ctx: &PlannerContext<'_>,
    query: &Query,
    cache: &CacheState,
    now: SimTime,
    opts: EnumerationOptions,
    indexes: &[Option<usize>],
    buf: &mut PlanBuffer,
) {
    // Node-count-independent execution volumes (eq. 8's q_tot / io_tot).
    let idx_refs: Vec<Option<&IndexDef>> = indexes
        .iter()
        .map(|o| o.map(|pos| &ctx.candidates[pos]))
        .collect();
    let base = ctx
        .estimator
        .cache_execution_base(ctx.schema, query, &idx_refs);

    // Data structures employed: every accessed column (deduplicated in
    // first-seen order), then each assigned index. Extra nodes are
    // appended per node count below.
    buf.data_uses.clear();
    buf.seen_cols.clear();
    for access in &query.accesses {
        for &c in &access.columns {
            if !buf.seen_cols.contains(&c) {
                buf.seen_cols.push(c);
                buf.data_uses.push(StructureKey::Column(c));
            }
        }
    }
    for idx in idx_refs.iter().flatten() {
        buf.data_uses.push(StructureKey::Index(idx.id));
    }

    // Partition into existing (available now) vs missing, and quote each
    // missing structure's build exactly once — the quote feeds both the
    // plan's build cost and its first amortisation installment.
    buf.data_missing.clear();
    buf.missing_cols.clear();
    for &key in &buf.data_uses {
        if !cache.is_available(key, now) {
            buf.data_missing.push(key);
            if let StructureKey::Column(c) = key {
                buf.missing_cols.push(c);
            }
        }
    }
    buf.data_missing_costs.clear();
    let mut data_build_cost = Money::ZERO;
    let mut data_build_time = SimDuration::ZERO;
    let mut data_missing_amort = Money::ZERO;
    for &key in &buf.data_missing {
        let (cost, time) = match key {
            StructureKey::Column(c) => ctx.estimator.build_column(ctx.schema, c),
            StructureKey::Index(id) => {
                let def = &ctx.candidates[id.index()];
                let missing_cols = &buf.missing_cols;
                ctx.estimator.build_index(ctx.schema, def, |c| {
                    cache.contains(StructureKey::Column(c)) || missing_cols.contains(&c)
                })
            }
            StructureKey::Node(_) => unreachable!("nodes are appended per node count"),
        };
        data_build_cost += cost;
        if time > data_build_time {
            data_build_time = time;
        }
        data_missing_amort += cost.amortize_over(opts.amortize_n);
        buf.data_missing_costs.push(cost);
    }

    // Existing data structures: pending installments and capped
    // maintenance backlog (footnote 3) — must quote exactly what
    // `CacheState::settle_usage` will charge.
    let mut data_exist_amort = Money::ZERO;
    let mut data_maintenance = Money::ZERO;
    for &key in &buf.data_uses {
        if let Some(s) = cache.get(key) {
            if s.is_available(now) {
                data_exist_amort += s.amortization_due();
                let span = now
                    .saturating_since(s.maint_paid_until)
                    .min(opts.maint_window);
                data_maintenance += ctx.estimator.maintenance(s, span);
            }
        }
    }

    let node_quote = ctx.estimator.build_node();
    let node_installment = node_quote.0.amortize_over(opts.amortize_n);

    for &k in &ctx.estimator.params().node_options {
        if k > 1 && !opts.allow_extra_nodes {
            continue;
        }
        let est = ctx.estimator.scale_cache_execution(&base, k);
        let (exec_cost, exec_breakdown) = ctx.estimator.price_execution(&est);

        let mut shell = buf.shell();
        let mut shape_indexes = PlanBuffer::shape_vec(&mut shell);
        if shape_indexes.capacity() == 0 {
            if let Some(pooled) = buf.free_shapes.pop() {
                shape_indexes = pooled;
            }
        }
        shape_indexes.extend(idx_refs.iter().map(|o| o.map(|i| i.id)));

        shell.uses.clear();
        shell.uses.extend_from_slice(&buf.data_uses);
        shell.missing.clear();
        shell.missing.extend_from_slice(&buf.data_missing);
        let mut plan_costs = buf.cost_vec();
        plan_costs.extend_from_slice(&buf.data_missing_costs);

        let mut build_cost = data_build_cost;
        let mut build_time = data_build_time;
        let mut amortized = data_exist_amort + data_missing_amort;
        let mut maintenance = data_maintenance;
        for ordinal in 0..k.saturating_sub(1) {
            let key = StructureKey::Node(ordinal);
            shell.uses.push(key);
            match cache.get(key) {
                Some(s) if s.is_available(now) => {
                    amortized += s.amortization_due();
                    let span = now
                        .saturating_since(s.maint_paid_until)
                        .min(opts.maint_window);
                    maintenance += ctx.estimator.maintenance(s, span);
                }
                _ => {
                    shell.missing.push(key);
                    build_cost += node_quote.0;
                    if node_quote.1 > build_time {
                        build_time = node_quote.1;
                    }
                    amortized += node_installment;
                    plan_costs.push(node_quote.0);
                }
            }
        }

        shell.shape = PlanShape::Cache {
            indexes: shape_indexes,
            nodes: k,
        };
        shell.exec_time = est.time;
        shell.exec_cost = exec_cost;
        shell.exec_breakdown = exec_breakdown;
        shell.build_cost = build_cost;
        shell.build_time = build_time;
        shell.amortized_cost = amortized;
        shell.maintenance_cost = maintenance;
        shell.price = exec_cost + amortized + maintenance;
        buf.plans.push(shell);
        buf.missing_costs.push(plan_costs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::generate_candidates;
    use crate::estimator::CostParams;
    use catalog::tpch::{tpch_schema, ScaleFactor};
    use pricing::PriceCatalog;
    use simcore::NetworkModel;
    use std::sync::Arc;
    use workload::{paper_templates, WorkloadConfig, WorkloadGenerator};

    struct Fixture {
        schema: Arc<Schema>,
        candidates: Vec<IndexDef>,
        cand_index: CandidateIndex,
        estimator: Estimator,
    }

    impl Fixture {
        fn new() -> Self {
            let schema = Arc::new(tpch_schema(ScaleFactor(10.0)));
            let templates = paper_templates(&schema);
            let candidates = generate_candidates(&schema, &templates, 65);
            let cand_index = CandidateIndex::build(&schema, &candidates);
            let estimator = Estimator::new(
                CostParams::default(),
                PriceCatalog::ec2_2009(),
                NetworkModel::paper_sdss(),
            );
            Fixture {
                schema,
                candidates,
                cand_index,
                estimator,
            }
        }

        fn ctx(&self) -> PlannerContext<'_> {
            PlannerContext {
                schema: &self.schema,
                candidates: &self.candidates,
                cand_index: &self.cand_index,
                estimator: &self.estimator,
            }
        }

        fn query(&self, seed: u64) -> Query {
            WorkloadGenerator::new(Arc::clone(&self.schema), WorkloadConfig::default(), seed)
                .next_query()
        }
    }

    #[test]
    fn backend_plan_always_present_and_existing() {
        let f = Fixture::new();
        let q = f.query(1);
        let plans = enumerate_plans(
            &f.ctx(),
            &q,
            &CacheState::new(),
            SimTime::ZERO,
            EnumerationOptions::default(),
        );
        let backend: Vec<&QueryPlan> = plans
            .iter()
            .filter(|p| p.shape == PlanShape::Backend)
            .collect();
        assert_eq!(backend.len(), 1);
        assert!(backend[0].is_existing());
        assert!(backend[0].price.is_positive());
    }

    #[test]
    fn cold_cache_makes_cache_plans_possible_not_existing() {
        let f = Fixture::new();
        let q = f.query(2);
        let plans = enumerate_plans(
            &f.ctx(),
            &q,
            &CacheState::new(),
            SimTime::ZERO,
            EnumerationOptions::default(),
        );
        for p in plans.iter().filter(|p| p.shape != PlanShape::Backend) {
            assert!(!p.is_existing(), "cold cache: {:?}", p.shape);
            assert!(p.build_cost.is_positive());
            assert!(!p.build_time.is_zero());
        }
    }

    #[test]
    fn node_counts_follow_options() {
        let f = Fixture::new();
        let q = f.query(3);
        let all = enumerate_plans(
            &f.ctx(),
            &q,
            &CacheState::new(),
            SimTime::ZERO,
            EnumerationOptions::default(),
        );
        let max_nodes = all.iter().map(|p| p.shape.cache_nodes()).max().unwrap();
        assert_eq!(max_nodes, 5, "node_options = [1,3,5]");

        let no_parallel = enumerate_plans(
            &f.ctx(),
            &q,
            &CacheState::new(),
            SimTime::ZERO,
            EnumerationOptions {
                allow_extra_nodes: false,
                ..EnumerationOptions::default()
            },
        );
        assert!(no_parallel.iter().all(|p| p.shape.cache_nodes() <= 1));
    }

    #[test]
    fn index_plans_obey_the_policy_switch() {
        let f = Fixture::new();
        let q = f.query(4);
        let with = enumerate_plans(
            &f.ctx(),
            &q,
            &CacheState::new(),
            SimTime::ZERO,
            EnumerationOptions::default(),
        );
        assert!(with.iter().any(|p| p.shape.uses_indexes()));
        let without = enumerate_plans(
            &f.ctx(),
            &q,
            &CacheState::new(),
            SimTime::ZERO,
            EnumerationOptions {
                allow_indexes: false,
                ..EnumerationOptions::default()
            },
        );
        assert!(without.iter().all(|p| !p.shape.uses_indexes()));
    }

    #[test]
    fn warm_cache_moves_plans_to_exist() {
        let f = Fixture::new();
        let q = f.query(5);
        let mut cache = CacheState::new();
        let now = SimTime::from_secs(100.0);
        for c in q.all_columns() {
            let size = f.schema.column_bytes(c);
            cache.install(
                StructureKey::Column(c),
                size,
                SimTime::ZERO,
                SimDuration::ZERO,
                Money::from_dollars(1.0),
                100,
            );
        }
        let plans = enumerate_plans(&f.ctx(), &q, &cache, now, EnumerationOptions::default());
        let scan_1 = plans
            .iter()
            .find(|p| {
                matches!(&p.shape, PlanShape::Cache { indexes, nodes: 1 }
                    if indexes.iter().all(Option::is_none))
            })
            .expect("scan plan");
        assert!(scan_1.is_existing(), "all columns cached");
        assert!(
            scan_1.amortized_cost.is_positive(),
            "installments due on fresh structures"
        );
        assert!(
            scan_1.maintenance_cost.is_positive(),
            "100 s of disk maintenance accrued"
        );
        assert_eq!(
            scan_1.price,
            scan_1.exec_cost + scan_1.amortized_cost + scan_1.maintenance_cost
        );
    }

    #[test]
    fn structures_still_building_stay_missing() {
        let f = Fixture::new();
        let q = f.query(6);
        let mut cache = CacheState::new();
        let col = q.all_columns().next().unwrap();
        cache.install(
            StructureKey::Column(col),
            100,
            SimTime::ZERO,
            SimDuration::from_secs(1_000.0), // becomes available at t=1000
            Money::ZERO,
            10,
        );
        let plans = enumerate_plans(
            &f.ctx(),
            &q,
            &cache,
            SimTime::from_secs(10.0),
            EnumerationOptions::default(),
        );
        for p in plans.iter().filter(|p| p.shape != PlanShape::Backend) {
            assert!(
                p.missing.contains(&StructureKey::Column(col)),
                "in-flight builds are not usable"
            );
        }
    }

    #[test]
    fn faster_plans_cost_more_cpu_money() {
        let f = Fixture::new();
        let q = f.query(7);
        let plans = enumerate_plans(
            &f.ctx(),
            &q,
            &CacheState::new(),
            SimTime::ZERO,
            EnumerationOptions::default(),
        );
        let scan = |k: u32| {
            plans
                .iter()
                .find(|p| {
                    matches!(&p.shape, PlanShape::Cache { indexes, nodes }
                        if *nodes == k && indexes.iter().all(Option::is_none))
                })
                .unwrap()
        };
        let (s1, s3) = (scan(1), scan(3));
        assert!(s3.exec_time < s1.exec_time, "3 nodes are faster");
        assert!(
            s3.exec_breakdown.cpu > s1.exec_breakdown.cpu,
            "parallel overhead costs CPU money"
        );
    }

    #[test]
    fn uses_lists_are_duplicate_free() {
        let f = Fixture::new();
        for seed in 0..20 {
            let q = f.query(seed);
            let plans = enumerate_plans(
                &f.ctx(),
                &q,
                &CacheState::new(),
                SimTime::ZERO,
                EnumerationOptions::default(),
            );
            for p in &plans {
                let mut u = p.uses.clone();
                u.sort();
                u.dedup();
                assert_eq!(u.len(), p.uses.len(), "duplicate in uses: {:?}", p.uses);
                for m in &p.missing {
                    assert!(p.uses.contains(m), "missing ⊆ uses violated");
                }
            }
        }
    }
}
