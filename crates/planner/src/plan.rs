//! Query plan representation.

use cache::{IndexId, StructureKey};
use metrics::CostBreakdown;
use pricing::Money;
use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// Where and how a plan executes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanShape {
    /// Run entirely on the back-end database, ship the result to the cloud
    /// (eq. 9 of the paper). Always available.
    Backend,
    /// Run in the cloud cache.
    Cache {
        /// Indexes assigned per table access (parallel to the query's
        /// access list; `None` = full column scan for that access).
        indexes: Vec<Option<IndexId>>,
        /// Total CPU nodes employed (1 = just the base node).
        nodes: u32,
    },
}

impl PlanShape {
    /// Number of nodes the plan occupies (backend plans use none of the
    /// cache's nodes).
    #[must_use]
    pub fn cache_nodes(&self) -> u32 {
        match self {
            PlanShape::Backend => 0,
            PlanShape::Cache { nodes, .. } => *nodes,
        }
    }

    /// True if any access uses an index.
    #[must_use]
    pub fn uses_indexes(&self) -> bool {
        match self {
            PlanShape::Backend => false,
            PlanShape::Cache { indexes, .. } => indexes.iter().any(Option::is_some),
        }
    }
}

/// A fully costed query plan — one point of the paper's `B_PQ` function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryPlan {
    /// Execution shape.
    pub shape: PlanShape,
    /// Estimated wall-clock execution time (the `t` of `B_PQ(t)`).
    pub exec_time: SimDuration,
    /// Execution resource cost `Ce` (eq. 8 / eq. 9).
    pub exec_cost: Money,
    /// Per-resource split of `exec_cost` (for operating-cost booking).
    pub exec_breakdown: CostBreakdown,
    /// Every structure the plan employs (existing and missing).
    pub uses: Vec<StructureKey>,
    /// Structures that would have to be built first. Empty ⇒ the plan is
    /// in `P_exist`; non-empty ⇒ `P_pos`.
    pub missing: Vec<StructureKey>,
    /// Total build cost of the missing structures (eqs. 10/12/14).
    pub build_cost: Money,
    /// Wall-clock to build the missing structures (builds proceed in
    /// parallel, so this is the max, not the sum).
    pub build_time: SimDuration,
    /// Amortisation installments due from this plan (`Ca`, eqs. 5–7).
    pub amortized_cost: Money,
    /// Maintenance accrued since each used structure was last paid
    /// (footnote 3 of the paper).
    pub maintenance_cost: Money,
    /// The plan's price to the user:
    /// `B_PQ = Ce + Ca + maintenance` (eq. 4 extended per footnote 3).
    pub price: Money,
}

impl QueryPlan {
    /// True if the plan runs on existing structures only (`P_exist`).
    #[must_use]
    pub fn is_existing(&self) -> bool {
        self.missing.is_empty()
    }

    /// Execution time in seconds (plot/report helper).
    #[must_use]
    pub fn time_secs(&self) -> f64 {
        self.exec_time.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(shape: PlanShape, missing: Vec<StructureKey>) -> QueryPlan {
        QueryPlan {
            shape,
            exec_time: SimDuration::from_secs(1.0),
            exec_cost: Money::from_dollars(0.01),
            exec_breakdown: CostBreakdown::ZERO,
            uses: vec![],
            missing,
            build_cost: Money::ZERO,
            build_time: SimDuration::ZERO,
            amortized_cost: Money::ZERO,
            maintenance_cost: Money::ZERO,
            price: Money::from_dollars(0.01),
        }
    }

    #[test]
    fn existing_iff_missing_empty() {
        assert!(plan(PlanShape::Backend, vec![]).is_existing());
        assert!(!plan(PlanShape::Backend, vec![StructureKey::Node(0)]).is_existing());
    }

    #[test]
    fn shape_helpers() {
        let backend = PlanShape::Backend;
        assert_eq!(backend.cache_nodes(), 0);
        assert!(!backend.uses_indexes());
        let cache = PlanShape::Cache {
            indexes: vec![None, Some(IndexId(3))],
            nodes: 3,
        };
        assert_eq!(cache.cache_nodes(), 3);
        assert!(cache.uses_indexes());
        let scan = PlanShape::Cache {
            indexes: vec![None],
            nodes: 1,
        };
        assert!(!scan.uses_indexes());
    }
}
