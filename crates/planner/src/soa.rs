//! Struct-of-arrays view of a plan set's selection-hot fields.
//!
//! The skyline reduction and the case analysis read exactly three fields
//! per plan — execution time, price, and the existing flag — yet a
//! [`QueryPlan`] scatters them across a struct holding vectors, cost
//! breakdowns and shape data. [`PlanHot`] packs those three fields into
//! parallel slices so the per-query selection loops become
//! branch-predictable linear scans over dense memory instead of strided
//! pointer-chasing through ~200-byte plan records.
//!
//! The view is a *projection*: filling it never clones a plan, and every
//! value is bit-identical to the source field, so selections computed
//! over the view equal selections computed over the plans.

use pricing::Money;
use simcore::SimDuration;

use crate::plan::QueryPlan;

/// Parallel slices of the selection-hot plan fields.
#[derive(Debug, Clone, Default)]
pub struct PlanHot {
    /// Execution time per plan (the `t` of `B_PQ(t)`).
    pub time: Vec<SimDuration>,
    /// Price per plan (`B_PQ`).
    pub price: Vec<Money>,
    /// True iff the plan is in `P_exist` (its `missing` list is empty).
    pub existing: Vec<bool>,
}

impl PlanHot {
    /// Empty view.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// True if no rows are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Clears the view, keeping capacity.
    pub fn clear(&mut self) {
        self.time.clear();
        self.price.clear();
        self.existing.clear();
    }

    /// Refills the view from a plan slice (clearing first).
    pub fn fill(&mut self, plans: &[QueryPlan]) {
        self.clear();
        self.time.reserve(plans.len());
        self.price.reserve(plans.len());
        self.existing.reserve(plans.len());
        for p in plans {
            self.time.push(p.exec_time);
            self.price.push(p.price);
            self.existing.push(p.is_existing());
        }
    }

    /// A filled view over `plans`.
    #[must_use]
    pub fn of(plans: &[QueryPlan]) -> Self {
        let mut hot = Self::default();
        hot.fill(plans);
        hot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanShape;
    use metrics::CostBreakdown;

    fn plan(time: f64, price: f64, existing: bool) -> QueryPlan {
        QueryPlan {
            shape: PlanShape::Backend,
            exec_time: SimDuration::from_secs(time),
            exec_cost: Money::from_dollars(price),
            exec_breakdown: CostBreakdown::ZERO,
            uses: vec![],
            missing: if existing {
                vec![]
            } else {
                vec![cache::StructureKey::Node(0)]
            },
            build_cost: Money::ZERO,
            build_time: SimDuration::ZERO,
            amortized_cost: Money::ZERO,
            maintenance_cost: Money::ZERO,
            price: Money::from_dollars(price),
        }
    }

    #[test]
    fn fill_projects_the_hot_fields() {
        let plans = vec![plan(1.0, 2.0, true), plan(3.0, 0.5, false)];
        let hot = PlanHot::of(&plans);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot.time[1], SimDuration::from_secs(3.0));
        assert_eq!(hot.price[0], Money::from_dollars(2.0));
        assert_eq!(hot.existing, vec![true, false]);
    }

    #[test]
    fn refill_replaces_previous_rows() {
        let mut hot = PlanHot::of(&[plan(1.0, 1.0, true)]);
        hot.fill(&[plan(2.0, 2.0, false), plan(4.0, 1.0, true)]);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot.existing, vec![false, true]);
        assert!(!hot.is_empty());
        hot.clear();
        assert!(hot.is_empty());
    }
}
