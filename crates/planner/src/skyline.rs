//! Skyline (Pareto) filtering of plans.
//!
//! Footnote 2 of the paper: *"We assume that `P_Q` holds only the skyline
//! query plans (w.r.t. execution time and overall cost); i.e. if there are
//! two plans with the same execution time, only the cheapest one is
//! encompassed."* A plan is kept iff no other plan is at least as fast
//! *and* at least as cheap (with one strict).

use crate::plan::QueryPlan;

/// Reduces `plans` to its (time, price) skyline.
///
/// Ties: among plans with equal time and equal price, the earlier one in
/// the input is kept (stable), so enumeration order breaks ties
/// deterministically. The result is sorted by ascending execution time
/// (hence strictly descending price), which is exactly the discrete
/// `B_PQ(t)` budget function of Section IV-C.
#[must_use]
pub fn skyline_filter(mut plans: Vec<QueryPlan>) -> Vec<QueryPlan> {
    if plans.is_empty() {
        return plans;
    }
    // Sort by time asc, then price asc, preserving input order on full ties.
    plans.sort_by(|a, b| a.exec_time.cmp(&b.exec_time).then(a.price.cmp(&b.price)));
    let mut out: Vec<QueryPlan> = Vec::with_capacity(plans.len());
    for plan in plans {
        match out.last() {
            // Strictly cheaper than everything faster-or-equal so far.
            Some(last) if plan.price >= last.price => {}
            _ => out.push(plan),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanShape;
    use metrics::CostBreakdown;
    use pricing::Money;
    use simcore::SimDuration;

    fn plan(time: f64, price: f64) -> QueryPlan {
        QueryPlan {
            shape: PlanShape::Backend,
            exec_time: SimDuration::from_secs(time),
            exec_cost: Money::from_dollars(price),
            exec_breakdown: CostBreakdown::ZERO,
            uses: vec![],
            missing: vec![],
            build_cost: Money::ZERO,
            build_time: SimDuration::ZERO,
            amortized_cost: Money::ZERO,
            maintenance_cost: Money::ZERO,
            price: Money::from_dollars(price),
        }
    }

    fn shape(plans: &[QueryPlan]) -> Vec<(f64, f64)> {
        plans
            .iter()
            .map(|p| (p.exec_time.as_secs(), p.price.as_dollars()))
            .collect()
    }

    #[test]
    fn dominated_plans_removed() {
        let out = skyline_filter(vec![
            plan(1.0, 10.0),
            plan(2.0, 12.0), // dominated: slower AND pricier
            plan(3.0, 5.0),
        ]);
        assert_eq!(shape(&out), vec![(1.0, 10.0), (3.0, 5.0)]);
    }

    #[test]
    fn equal_time_keeps_cheapest() {
        let out = skyline_filter(vec![plan(1.0, 10.0), plan(1.0, 8.0), plan(1.0, 9.0)]);
        assert_eq!(shape(&out), vec![(1.0, 8.0)]);
    }

    #[test]
    fn equal_price_keeps_fastest() {
        let out = skyline_filter(vec![plan(2.0, 5.0), plan(1.0, 5.0)]);
        assert_eq!(shape(&out), vec![(1.0, 5.0)]);
    }

    #[test]
    fn skyline_is_time_sorted_and_price_descending() {
        let out = skyline_filter(vec![
            plan(5.0, 1.0),
            plan(1.0, 9.0),
            plan(3.0, 4.0),
            plan(2.0, 6.0),
            plan(4.0, 2.0),
        ]);
        let s = shape(&out);
        assert!(s.windows(2).all(|w| w[0].0 < w[1].0), "time ascending");
        assert!(s.windows(2).all(|w| w[0].1 > w[1].1), "price descending");
        assert_eq!(s.len(), 5, "a proper staircase survives intact");
    }

    #[test]
    fn empty_and_singleton() {
        assert!(skyline_filter(vec![]).is_empty());
        let out = skyline_filter(vec![plan(1.0, 1.0)]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn single_dominating_plan_wins() {
        let out = skyline_filter(vec![plan(2.0, 2.0), plan(1.0, 1.0), plan(3.0, 3.0)]);
        assert_eq!(shape(&out), vec![(1.0, 1.0)]);
    }
}
