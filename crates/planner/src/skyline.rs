//! Skyline (Pareto) filtering of plans.
//!
//! Footnote 2 of the paper: *"We assume that `P_Q` holds only the skyline
//! query plans (w.r.t. execution time and overall cost); i.e. if there are
//! two plans with the same execution time, only the cheapest one is
//! encompassed."* A plan is kept iff no other plan is at least as fast
//! *and* at least as cheap (with one strict).

use crate::plan::QueryPlan;
use crate::soa::PlanHot;

/// Reduces `plans` to its (time, price) skyline.
///
/// Ties: among plans with equal time and equal price, the earlier one in
/// the input is kept (stable), so enumeration order breaks ties
/// deterministically. The result is sorted by ascending execution time
/// (hence strictly descending price), which is exactly the discrete
/// `B_PQ(t)` budget function of Section IV-C.
#[must_use]
pub fn skyline_filter(mut plans: Vec<QueryPlan>) -> Vec<QueryPlan> {
    if plans.is_empty() {
        return plans;
    }
    // Sort by time asc, then price asc, preserving input order on full ties.
    plans.sort_by(|a, b| a.exec_time.cmp(&b.exec_time).then(a.price.cmp(&b.price)));
    let mut out: Vec<QueryPlan> = Vec::with_capacity(plans.len());
    for plan in plans {
        match out.last() {
            // Strictly cheaper than everything faster-or-equal so far.
            Some(last) if plan.price >= last.price => {}
            _ => out.push(plan),
        }
    }
    out
}

/// Computes the economy's two-tier skyline over `plans` in one pass,
/// without cloning a single plan: indices of the *existing* plans that
/// survive the skyline of `P_exist` (the executable menu), followed by
/// indices of the *possible* plans that survive the skyline of the full
/// set (the plans worth regretting). Each tier is ordered by ascending
/// execution time, exactly as [`skyline_filter`] orders its output.
///
/// Equivalent to the seed economy's
/// `skyline_filter(exist) ++ skyline_filter(all).filter(!existing)` —
/// which cloned the full plan vector twice per query — because within one
/// stable (time, price) order a plan survives a skyline iff its price is
/// strictly below the running minimum over the plans sorted before it
/// (rejected plans can never lower that minimum).
///
/// `order` is caller scratch (cleared and refilled); `out` receives the
/// surviving indices with the count of existing-tier entries returned.
pub fn skyline_partition(
    plans: &[QueryPlan],
    order: &mut Vec<usize>,
    out: &mut Vec<usize>,
) -> usize {
    skyline_partition_hot(&PlanHot::of(plans), order, out)
}

/// [`skyline_partition`] over a struct-of-arrays plan view: the sort key
/// comparisons and the two min-scans read dense parallel slices
/// ([`PlanHot`]) instead of strided plan structs. Identical output for
/// identical (time, price, existing) rows.
pub fn skyline_partition_hot(hot: &PlanHot, order: &mut Vec<usize>, out: &mut Vec<usize>) -> usize {
    order.clear();
    order.extend(0..hot.len());
    // Stable sort by (time, price): equal keys keep enumeration order, so
    // ties break exactly as in `skyline_filter`.
    order.sort_by(|&a, &b| {
        hot.time[a]
            .cmp(&hot.time[b])
            .then(hot.price[a].cmp(&hot.price[b]))
    });

    out.clear();
    let mut min_exist: Option<pricing::Money> = None;
    for &i in order.iter() {
        if hot.existing[i] && min_exist.is_none_or(|m| hot.price[i] < m) {
            out.push(i);
            min_exist = Some(hot.price[i]);
        }
    }
    let existing = out.len();
    let mut min_all: Option<pricing::Money> = None;
    for &i in order.iter() {
        if min_all.is_none_or(|m| hot.price[i] < m) {
            if !hot.existing[i] {
                out.push(i);
            }
            min_all = Some(hot.price[i]);
        }
    }
    existing
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanShape;
    use metrics::CostBreakdown;
    use pricing::Money;
    use simcore::SimDuration;

    fn plan(time: f64, price: f64) -> QueryPlan {
        QueryPlan {
            shape: PlanShape::Backend,
            exec_time: SimDuration::from_secs(time),
            exec_cost: Money::from_dollars(price),
            exec_breakdown: CostBreakdown::ZERO,
            uses: vec![],
            missing: vec![],
            build_cost: Money::ZERO,
            build_time: SimDuration::ZERO,
            amortized_cost: Money::ZERO,
            maintenance_cost: Money::ZERO,
            price: Money::from_dollars(price),
        }
    }

    fn shape(plans: &[QueryPlan]) -> Vec<(f64, f64)> {
        plans
            .iter()
            .map(|p| (p.exec_time.as_secs(), p.price.as_dollars()))
            .collect()
    }

    #[test]
    fn dominated_plans_removed() {
        let out = skyline_filter(vec![
            plan(1.0, 10.0),
            plan(2.0, 12.0), // dominated: slower AND pricier
            plan(3.0, 5.0),
        ]);
        assert_eq!(shape(&out), vec![(1.0, 10.0), (3.0, 5.0)]);
    }

    #[test]
    fn equal_time_keeps_cheapest() {
        let out = skyline_filter(vec![plan(1.0, 10.0), plan(1.0, 8.0), plan(1.0, 9.0)]);
        assert_eq!(shape(&out), vec![(1.0, 8.0)]);
    }

    #[test]
    fn equal_price_keeps_fastest() {
        let out = skyline_filter(vec![plan(2.0, 5.0), plan(1.0, 5.0)]);
        assert_eq!(shape(&out), vec![(1.0, 5.0)]);
    }

    #[test]
    fn skyline_is_time_sorted_and_price_descending() {
        let out = skyline_filter(vec![
            plan(5.0, 1.0),
            plan(1.0, 9.0),
            plan(3.0, 4.0),
            plan(2.0, 6.0),
            plan(4.0, 2.0),
        ]);
        let s = shape(&out);
        assert!(s.windows(2).all(|w| w[0].0 < w[1].0), "time ascending");
        assert!(s.windows(2).all(|w| w[0].1 > w[1].1), "price descending");
        assert_eq!(s.len(), 5, "a proper staircase survives intact");
    }

    #[test]
    fn empty_and_singleton() {
        assert!(skyline_filter(vec![]).is_empty());
        let out = skyline_filter(vec![plan(1.0, 1.0)]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn single_dominating_plan_wins() {
        let out = skyline_filter(vec![plan(2.0, 2.0), plan(1.0, 1.0), plan(3.0, 3.0)]);
        assert_eq!(shape(&out), vec![(1.0, 1.0)]);
    }

    fn possible(time: f64, price: f64) -> QueryPlan {
        QueryPlan {
            missing: vec![cache::StructureKey::Node(0)],
            uses: vec![cache::StructureKey::Node(0)],
            ..plan(time, price)
        }
    }

    /// The seed economy's composition, kept as the reference semantics.
    fn reference_partition(plans: &[QueryPlan]) -> Vec<QueryPlan> {
        let (exist, _pos): (Vec<QueryPlan>, Vec<QueryPlan>) =
            plans.iter().cloned().partition(QueryPlan::is_existing);
        let mut skyline = skyline_filter(exist);
        skyline.extend(
            skyline_filter(plans.to_vec())
                .into_iter()
                .filter(|p| !p.is_existing()),
        );
        skyline
    }

    #[test]
    fn partition_matches_the_two_filter_composition() {
        // Deterministic pseudo-random mixes of existing/possible plans.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..200 {
            let n = (next() % 12 + 1) as usize;
            let plans: Vec<QueryPlan> = (0..n)
                .map(|_| {
                    let t = (next() % 50) as f64 * 0.25;
                    let p = (next() % 40) as f64 * 0.5;
                    if next() % 2 == 0 {
                        plan(t, p)
                    } else {
                        possible(t, p)
                    }
                })
                .collect();
            let reference = reference_partition(&plans);
            let mut order = Vec::new();
            let mut out = Vec::new();
            let exist_count = skyline_partition(&plans, &mut order, &mut out);
            let got: Vec<QueryPlan> = out.iter().map(|&i| plans[i].clone()).collect();
            assert_eq!(got, reference, "case {case} diverged");
            assert!(got[..exist_count].iter().all(QueryPlan::is_existing));
            assert!(!got[exist_count..].iter().any(QueryPlan::is_existing));
        }
    }
}
