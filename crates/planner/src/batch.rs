//! Batched, structure-major plan completion.
//!
//! [`crate::skeleton::complete_plans_into`] binds one node's cache state
//! at a time: a fleet quote round with N bidding nodes walks the
//! skeleton's structure lists N times, probing one cache per walk. This
//! module inverts that loop — **structure-major** instead of node-major:
//! a [`BatchCompleter`] takes one [`PlanSkeleton`] plus a slice of
//! per-node [`CacheView`]s and, per structure list, probes *every* node's
//! epoch/presence state in one dense sweep ([`BatchCompleter::gather`]),
//! accumulating each node's build/amortisation/maintenance aggregates
//! side by side. Emission ([`BatchCompleter::emit_into`]) then
//! vector-sweeps the skeleton's SoA execution cells per node, copying the
//! gathered aggregates into plan shells without touching any cache again.
//!
//! The contract is exact: for every node `i`, `gather` + `emit_into(i)`
//! fills the buffer **bit-identically** to
//! `complete_plans_into(skel, views[i].cache, now, views[i].opts, …)` —
//! same plans, same order, same prices, same missing-build quote table.
//! `tests/batch_completion.rs` pins the property over random cache
//! histories × node counts; the fleet's batched quote rounds
//! (`econ::QuoteBatch`) ride on it.
//!
//! # Lane layout
//!
//! Gather runs in two sweeps over dense SoA lanes keyed
//! `unique-structure × node` (nodes contiguous, so each structure's lane
//! is one cache-resident stripe):
//!
//! 1. **Probe sweep** — the *union* of every variant's structures (plus
//!    index key-fetch columns, presence-only) forms one probe table, so
//!    each node's cache answers one probe per distinct structure instead
//!    of one per `(variant, position)`. The table is a pure function of
//!    the skeleton, precomputed in [`PlanSkeleton::build`]
//!    ([`crate::skeleton::ProbeTable`]) — skeletons are memoized, so the
//!    round pays nothing to deduplicate. The sweep runs node-major (one
//!    view bind per node, that node's cache stays hot) and each probe
//!    fills four lanes: `present`, `usable` (present *and* available),
//!    and zero-masked `amort`/`maint` (the structure's amortisation due
//!    and maintenance quote when usable, [`Money::ZERO`] otherwise —
//!    mask-select, not branch).
//! 2. **Accumulate sweep** — per variant, the existing-structure
//!    aggregates are *unconditional* lane sums: because unusable slots
//!    hold zeros, `exist_amort += amort_lane` / `maintenance +=
//!    maint_lane` need no per-node branch, and the fixed-width inner
//!    loops over the contiguous node stripes autovectorize. Only the
//!    (rare) missing side — build costs, quote-table pushes — runs
//!    masked, gated per node on the `usable` lane.
//!
//! The dedup is what lets a missing index's key-fetch coverage drop its
//! per-node bookkeeping: a key column is covered iff the cache holds it
//! (in any state, builds in flight included) *or* the variant itself
//! uses it — the latter is node-independent, because a variant-used
//! column is either present (covered) or goes missing and is built
//! alongside the index (covered). `covered = in_variant ∨ present`
//! replaces the scalar path's per-node missing-column set exactly.
//!
//! The gather/emit split (rather than one monolithic call) exists so the
//! economy can interleave its per-manager `RefCell` borrows: gather needs
//! only shared cache references, while each emission borrows that one
//! node's [`PlanBuffer`].

use cache::{CacheState, CachedStructure, StructureKey};
use pricing::Money;
use simcore::{SimDuration, SimTime};

use crate::enumerate::{EnumerationOptions, PlanBuffer};
use crate::plan::PlanShape;
use crate::skeleton::{BuildShape, PlanSkeleton};

/// One node's view of a batched completion: its cache state plus the
/// enumeration options its policy quotes under.
#[derive(Debug, Clone, Copy)]
pub struct CacheView<'a> {
    /// The node's cache state.
    pub cache: &'a CacheState,
    /// The node's enumeration options (plan-family switches, amortisation
    /// horizon, maintenance window).
    pub opts: EnumerationOptions,
}

/// Reusable scratch and gathered state of a batched completion round.
///
/// All vectors are retained across rounds, so a long-lived completer
/// performs no steady-state allocation.
#[derive(Debug, Default)]
pub struct BatchCompleter {
    /// Nodes in the gathered round.
    n: usize,
    /// Per node: enumeration options (copied out of the views at gather).
    opts: Vec<EnumerationOptions>,
    /// Per node: first amortisation installment of an extra CPU node
    /// under that node's horizon.
    node_inst: Vec<Money>,
    /// Per `(ordinal × n + node)`: `Some((amortisation due, maintenance
    /// quote))` when the extra CPU node is available, `None` when it must
    /// be built.
    node_ord: Vec<Option<(Money, Money)>>,
    /// Per `(variant × n + node)`: false when the node's options exclude
    /// the variant (index plans forbidden).
    active: Vec<bool>,
    /// Per `(variant × n + node)`: summed build cost of missing data
    /// structures.
    build_cost: Vec<Money>,
    /// Per `(variant × n + node)`: max build time of missing data
    /// structures.
    build_time: Vec<SimDuration>,
    /// Per `(variant × n + node)`: first installments of missing data
    /// structures under the node's horizon.
    missing_amort: Vec<Money>,
    /// Per `(variant × n + node)`: amortisation dues of existing data
    /// structures.
    exist_amort: Vec<Money>,
    /// Per `(variant × n + node)`: maintenance quotes of existing data
    /// structures.
    maintenance: Vec<Money>,
    /// Per `(variant × n + node)`: the node's missing structures as
    /// `(position into the variant's uses, build quote)` — ascending
    /// position, exactly the order the per-node completion walks.
    missing: Vec<Vec<(u32, Money)>>,
    /// Per `(probe-table entry × n + node)`: the cache holds the
    /// structure in any state (builds in flight included) — the
    /// `contains` the key-fetch coverage rule reads.
    lane_present: Vec<bool>,
    /// Per `(probe-table entry × n + node)`: present *and* available —
    /// the mask splitting existing from missing accumulation.
    lane_usable: Vec<bool>,
    /// Per `(probe-table entry × n + node)`: amortisation due when
    /// usable, zero otherwise (mask-select, so the exist sweep adds
    /// unconditionally).
    lane_amort: Vec<Money>,
    /// Per `(probe-table entry × n + node)`: maintenance quote when
    /// usable, zero otherwise.
    lane_maint: Vec<Money>,
}

impl BatchCompleter {
    /// An empty completer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Phase 1 — the structure-major sweep. Probes each structure of each
    /// skeleton variant against every node's cache in one pass,
    /// accumulating the per-node aggregates that
    /// [`Self::emit_into`] copies into plans.
    ///
    /// `view(i)` must return node `i`'s cache view and be stable for the
    /// round; `price` quotes a structure's maintenance over a span (the
    /// estimator's eq. 11/13/15), shared by every node.
    ///
    /// # Panics
    /// Panics if any node's `opts.amortize_n` is zero.
    pub fn gather<'a, V, P>(
        &mut self,
        skel: &PlanSkeleton,
        count: usize,
        view: V,
        now: SimTime,
        price: P,
    ) where
        V: Fn(usize) -> CacheView<'a>,
        P: Fn(&CachedStructure, SimDuration) -> Money,
    {
        self.n = count;
        self.opts.clear();
        self.node_inst.clear();
        for i in 0..count {
            let opts = view(i).opts;
            assert!(opts.amortize_n > 0, "amortization horizon must be positive");
            self.opts.push(opts);
            self.node_inst
                .push(skel.node_build_cost.amortize_over(opts.amortize_n));
        }

        // Extra-CPU-node states are variant- and cell-independent: gather
        // each (ordinal, node) pair once, reuse for every cell.
        let max_extra = skel
            .variants
            .iter()
            .flat_map(|v| v.cells.nodes.iter())
            .max()
            .copied()
            .unwrap_or(1)
            .saturating_sub(1) as usize;
        self.node_ord.clear();
        self.node_ord.resize(max_extra * count, None);
        for ordinal in 0..max_extra {
            for i in 0..count {
                let v = view(i);
                if let Some(s) = v.cache.get(StructureKey::Node(ordinal as u32)) {
                    if s.is_available(now) {
                        let span = now
                            .saturating_since(s.maint_paid_until)
                            .min(self.opts[i].maint_window);
                        self.node_ord[ordinal * count + i] =
                            Some((s.amortization_due(), price(s, span)));
                    }
                }
            }
        }

        let slots = skel.variants.len() * count;
        self.active.clear();
        self.active.resize(slots, false);
        self.build_cost.clear();
        self.build_cost.resize(slots, Money::ZERO);
        self.build_time.clear();
        self.build_time.resize(slots, SimDuration::ZERO);
        self.missing_amort.clear();
        self.missing_amort.resize(slots, Money::ZERO);
        self.exist_amort.clear();
        self.exist_amort.resize(slots, Money::ZERO);
        self.maintenance.clear();
        self.maintenance.resize(slots, Money::ZERO);
        if self.missing.len() < slots {
            self.missing.resize_with(slots, Vec::new);
        }

        // Probe sweep: one cache probe per (distinct structure, node)
        // over the skeleton's precomputed probe table, filling the
        // presence/usable masks and the zero-masked amortisation/
        // maintenance lanes. Node-major — one view bind per node, so
        // each node's cache answers its probes back to back — but the
        // lanes stay structure-major (nodes contiguous per structure),
        // the layout the accumulate sweep streams.
        let probe = &skel.probe;
        let lanes = probe.keys.len() * count;
        self.lane_present.clear();
        self.lane_present.resize(lanes, false);
        self.lane_usable.clear();
        self.lane_usable.resize(lanes, false);
        self.lane_amort.clear();
        self.lane_amort.resize(lanes, Money::ZERO);
        self.lane_maint.clear();
        self.lane_maint.resize(lanes, Money::ZERO);
        for i in 0..count {
            let v = view(i);
            let maint_window = self.opts[i].maint_window;
            for (u, &key) in probe.keys.iter().enumerate() {
                if let Some(s) = v.cache.get(key) {
                    let at = u * count + i;
                    self.lane_present[at] = true;
                    let usable = s.is_available(now);
                    self.lane_usable[at] = usable;
                    if usable && probe.priced[u] {
                        self.lane_amort[at] = s.amortization_due();
                        let span = now.saturating_since(s.maint_paid_until).min(maint_window);
                        self.lane_maint[at] = price(s, span);
                    }
                }
            }
        }

        for (vi, variant) in skel.variants.iter().enumerate() {
            let base = vi * count;
            for i in 0..count {
                self.active[base + i] = !variant.uses_indexes || self.opts[i].allow_indexes;
                self.missing[base + i].clear();
            }

            // Existing-structure accumulation, branch-free: unusable
            // slots hold zero lanes, so the adds run unconditionally
            // over the contiguous node stripes. Inactive slots (variant
            // excluded by the node's options) accumulate too — their
            // aggregates are never emitted — keeping the inner loops
            // mask-free.
            for &u in probe.uses_probe(vi) {
                let lane = u as usize * count;
                let amort = &self.lane_amort[lane..lane + count];
                let maint = &self.lane_maint[lane..lane + count];
                let ea = &mut self.exist_amort[base..base + count];
                let ma = &mut self.maintenance[base..base + count];
                for i in 0..count {
                    ea[i] += amort[i];
                    ma[i] += maint[i];
                }
            }

            // Missing side, masked per node on the usable lane: build
            // cost and max build time accumulate, the first installment
            // under the node's horizon accrues, and the `(position,
            // quote)` pair joins the slot's quote table — in ascending
            // position, the exact order the per-node completion walks.
            for (pos, &u) in probe.uses_probe(vi).iter().enumerate() {
                let lane = u as usize * count;
                if self.lane_usable[lane..lane + count].iter().all(|&ok| ok) {
                    continue;
                }
                match &variant.builds[pos] {
                    BuildShape::Column { cost, time } => {
                        for i in 0..count {
                            let slot = base + i;
                            if self.lane_usable[lane + i] || !self.active[slot] {
                                continue;
                            }
                            self.build_cost[slot] += *cost;
                            if *time > self.build_time[slot] {
                                self.build_time[slot] = *time;
                            }
                            self.missing_amort[slot] += cost.amortize_over(self.opts[i].amortize_n);
                            self.missing[slot].push((pos as u32, *cost));
                        }
                    }
                    BuildShape::Index {
                        sort_cost,
                        sort_time,
                        keys,
                    } => {
                        // A key column is covered iff the cache holds it
                        // (any state) or the variant itself uses it: a
                        // variant-used column is either present or goes
                        // missing and is built alongside the index. Both
                        // the probe index and the node-independent
                        // `in_variant` half are precomputed in the
                        // skeleton's probe table.
                        let resolved = probe.key_probe(vi, pos);
                        for i in 0..count {
                            let slot = base + i;
                            if self.lane_usable[lane + i] || !self.active[slot] {
                                continue;
                            }
                            let mut cost = *sort_cost;
                            let mut fetch_time = SimDuration::ZERO;
                            for (kf, &(in_variant, ku)) in keys.iter().zip(resolved) {
                                let covered =
                                    in_variant || self.lane_present[ku as usize * count + i];
                                if !covered {
                                    cost += kf.cost;
                                    if kf.time > fetch_time {
                                        fetch_time = kf.time;
                                    }
                                }
                            }
                            let time = fetch_time + *sort_time;
                            self.build_cost[slot] += cost;
                            if time > self.build_time[slot] {
                                self.build_time[slot] = time;
                            }
                            self.missing_amort[slot] += cost.amortize_over(self.opts[i].amortize_n);
                            self.missing[slot].push((pos as u32, cost));
                        }
                    }
                }
            }
        }
    }

    /// Phase 2 — emits node `node`'s completed plan set into `buf`,
    /// bit-identical to [`crate::skeleton::complete_plans_into`] run
    /// against that node's view: same plans, same order, same prices, and
    /// the same missing-build quote table left in the buffer.
    ///
    /// # Panics
    /// Panics if `node` is outside the gathered round.
    pub fn emit_into(&self, skel: &PlanSkeleton, node: usize, buf: &mut PlanBuffer) {
        assert!(
            node < self.n,
            "node {node} outside gathered round {}",
            self.n
        );
        let opts = self.opts[node];
        buf.reclaim_in_place();

        // --- Backend plan (always P_exist). ---
        let mut shell = buf.shell();
        let recovered_shape = PlanBuffer::shape_vec(&mut shell);
        if recovered_shape.capacity() > 0 {
            buf.free_shapes.push(recovered_shape);
        }
        shell.shape = PlanShape::Backend;
        shell.exec_time = skel.backend_time;
        shell.exec_cost = skel.backend_cost;
        shell.exec_breakdown = skel.backend_breakdown;
        shell.uses.clear();
        shell.missing.clear();
        shell.build_cost = Money::ZERO;
        shell.build_time = SimDuration::ZERO;
        shell.amortized_cost = Money::ZERO;
        shell.maintenance_cost = Money::ZERO;
        shell.price = skel.backend_cost;
        buf.plans.push(shell);
        let backend_costs = buf.cost_vec();
        buf.missing_costs.push(backend_costs);

        for (vi, variant) in skel.variants.iter().enumerate() {
            let slot = vi * self.n + node;
            if !self.active[slot] {
                continue;
            }
            for cell in 0..variant.cells.len() {
                let k = variant.cells.nodes[cell];
                if k > 1 && !opts.allow_extra_nodes {
                    continue;
                }

                let mut shell = buf.shell();
                let mut shape_indexes = PlanBuffer::shape_vec(&mut shell);
                if shape_indexes.capacity() == 0 {
                    if let Some(pooled) = buf.free_shapes.pop() {
                        shape_indexes = pooled;
                    }
                }
                shape_indexes.extend_from_slice(&variant.indexes);

                shell.uses.clear();
                shell.uses.extend_from_slice(&variant.uses);
                shell.missing.clear();
                let mut plan_costs = buf.cost_vec();
                for &(pos, cost) in &self.missing[slot] {
                    shell.missing.push(variant.uses[pos as usize]);
                    plan_costs.push(cost);
                }

                let mut build_cost = self.build_cost[slot];
                let mut build_time = self.build_time[slot];
                let mut amortized = self.exist_amort[slot] + self.missing_amort[slot];
                let mut maintenance = self.maintenance[slot];
                for ordinal in 0..k.saturating_sub(1) {
                    let key = StructureKey::Node(ordinal);
                    shell.uses.push(key);
                    match self.node_ord[ordinal as usize * self.n + node] {
                        Some((amort, maint)) => {
                            amortized += amort;
                            maintenance += maint;
                        }
                        None => {
                            shell.missing.push(key);
                            build_cost += skel.node_build_cost;
                            if skel.node_build_time > build_time {
                                build_time = skel.node_build_time;
                            }
                            amortized += self.node_inst[node];
                            plan_costs.push(skel.node_build_cost);
                        }
                    }
                }

                shell.shape = PlanShape::Cache {
                    indexes: shape_indexes,
                    nodes: k,
                };
                shell.exec_time = variant.cells.time[cell];
                shell.exec_cost = variant.cells.cost[cell];
                shell.exec_breakdown = variant.cells.breakdown[cell];
                shell.build_cost = build_cost;
                shell.build_time = build_time;
                shell.amortized_cost = amortized;
                shell.maintenance_cost = maintenance;
                shell.price = variant.cells.cost[cell] + amortized + maintenance;
                buf.plans.push(shell);
                buf.missing_costs.push(plan_costs);
            }
        }
    }
}

/// Completes one skeleton against N nodes' cache views in a single
/// structure-major pass, leaving node `i`'s plan set in `bufs[i]` exactly
/// as [`crate::skeleton::complete_plans_into`] would.
///
/// # Panics
/// Panics if `views` and `bufs` differ in length or any view's
/// `opts.amortize_n` is zero.
pub fn complete_plans_batch<P>(
    completer: &mut BatchCompleter,
    skel: &PlanSkeleton,
    views: &[CacheView<'_>],
    now: SimTime,
    price: P,
    bufs: &mut [&mut PlanBuffer],
) where
    P: Fn(&CachedStructure, SimDuration) -> Money,
{
    assert_eq!(views.len(), bufs.len(), "one buffer per view");
    completer.gather(skel, views.len(), |i| views[i], now, &price);
    for (i, buf) in bufs.iter_mut().enumerate() {
        completer.emit_into(skel, i, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{generate_candidates, CandidateIndex};
    use crate::estimator::{CostParams, Estimator};
    use crate::skeleton::complete_plans_into;
    use crate::PlannerContext;
    use cache::IndexDef;
    use catalog::tpch::{tpch_schema, ScaleFactor};
    use catalog::Schema;
    use pricing::PriceCatalog;
    use simcore::NetworkModel;
    use std::sync::Arc;
    use workload::{paper_templates, Query, WorkloadConfig, WorkloadGenerator};

    struct Fixture {
        schema: Arc<Schema>,
        candidates: Vec<IndexDef>,
        cand_index: CandidateIndex,
        estimator: Estimator,
    }

    impl Fixture {
        fn new() -> Self {
            let schema = Arc::new(tpch_schema(ScaleFactor(10.0)));
            let templates = paper_templates(&schema);
            let candidates = generate_candidates(&schema, &templates, 65);
            let cand_index = CandidateIndex::build(&schema, &candidates);
            let estimator = Estimator::new(
                CostParams::default(),
                PriceCatalog::ec2_2009(),
                NetworkModel::paper_sdss(),
            );
            Fixture {
                schema,
                candidates,
                cand_index,
                estimator,
            }
        }

        fn ctx(&self) -> PlannerContext<'_> {
            PlannerContext {
                schema: &self.schema,
                candidates: &self.candidates,
                cand_index: &self.cand_index,
                estimator: &self.estimator,
            }
        }

        fn query(&self, seed: u64) -> Query {
            WorkloadGenerator::new(Arc::clone(&self.schema), WorkloadConfig::default(), seed)
                .next_query()
        }
    }

    /// Heterogeneous per-node options: every structural combination plus
    /// varied horizons/windows.
    fn node_opts(i: usize) -> EnumerationOptions {
        EnumerationOptions {
            allow_indexes: i.is_multiple_of(2),
            allow_extra_nodes: !i.is_multiple_of(3),
            amortize_n: 100 + 37 * i as u64,
            maint_window: SimDuration::from_secs(60.0 + 45.0 * i as f64),
        }
    }

    fn warm_cache(f: &Fixture, q: &Query, salt: u64) -> CacheState {
        let mut cache = CacheState::new();
        for (i, c) in q.all_columns().enumerate() {
            if (i as u64 + salt).is_multiple_of(2) {
                let build = SimDuration::from_secs(if i == 0 { 500.0 } else { 0.0 });
                cache.install(
                    StructureKey::Column(c),
                    f.schema.column_bytes(c),
                    SimTime::ZERO,
                    build,
                    Money::from_dollars(0.5),
                    100,
                );
            }
        }
        if salt.is_multiple_of(3) {
            cache.install(
                StructureKey::Index(f.candidates[salt as usize % f.candidates.len()].id),
                1_000,
                SimTime::ZERO,
                SimDuration::ZERO,
                Money::from_dollars(0.2),
                100,
            );
        }
        for ordinal in 0..(salt % 3) {
            cache.install(
                StructureKey::Node(ordinal as u32),
                0,
                SimTime::ZERO,
                SimDuration::ZERO,
                Money::from_cents(10),
                100,
            );
        }
        cache
    }

    #[test]
    fn batch_matches_per_node_completion_on_heterogeneous_views() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut completer = BatchCompleter::new();
        for seed in 0..6 {
            let q = f.query(seed);
            let skel = PlanSkeleton::build(&ctx, &q);
            let caches: Vec<CacheState> = (0..5).map(|i| warm_cache(&f, &q, seed + i)).collect();
            let now = SimTime::from_secs(100.0);
            let views: Vec<CacheView<'_>> = caches
                .iter()
                .enumerate()
                .map(|(i, cache)| CacheView {
                    cache,
                    opts: node_opts(i),
                })
                .collect();

            let mut batch_bufs: Vec<PlanBuffer> =
                (0..views.len()).map(|_| PlanBuffer::new()).collect();
            {
                let mut buf_refs: Vec<&mut PlanBuffer> = batch_bufs.iter_mut().collect();
                complete_plans_batch(
                    &mut completer,
                    &skel,
                    &views,
                    now,
                    |s, span| f.estimator.maintenance(s, span),
                    &mut buf_refs,
                );
            }
            for (i, view) in views.iter().enumerate() {
                let mut reference = PlanBuffer::new();
                complete_plans_into(
                    &skel,
                    view.cache,
                    now,
                    view.opts,
                    |s, span| f.estimator.maintenance(s, span),
                    &mut reference,
                );
                assert_eq!(
                    batch_bufs[i].take(),
                    reference.take(),
                    "seed {seed}, node {i}"
                );
                assert_eq!(
                    batch_bufs[i].take_missing_costs(),
                    reference.take_missing_costs(),
                    "seed {seed}, node {i} missing-build quotes"
                );
            }
        }
    }

    #[test]
    fn completer_is_reusable_across_rounds_of_different_sizes() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let mut completer = BatchCompleter::new();
        let now = SimTime::from_secs(40.0);
        for (round, count) in [(0u64, 7usize), (1, 2), (2, 5)] {
            let q = f.query(round);
            let skel = PlanSkeleton::build(&ctx, &q);
            let caches: Vec<CacheState> = (0..count)
                .map(|i| warm_cache(&f, &q, round + i as u64))
                .collect();
            let views: Vec<CacheView<'_>> = caches
                .iter()
                .map(|cache| CacheView {
                    cache,
                    opts: EnumerationOptions::default(),
                })
                .collect();
            completer.gather(
                &skel,
                count,
                |i| views[i],
                now,
                |s, span| f.estimator.maintenance(s, span),
            );
            for (i, view) in views.iter().enumerate() {
                let mut batch_buf = PlanBuffer::new();
                completer.emit_into(&skel, i, &mut batch_buf);
                let mut reference = PlanBuffer::new();
                complete_plans_into(
                    &skel,
                    view.cache,
                    now,
                    view.opts,
                    |s, span| f.estimator.maintenance(s, span),
                    &mut reference,
                );
                assert_eq!(batch_buf.take(), reference.take(), "round {round} node {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside gathered round")]
    fn emitting_an_ungathered_node_panics() {
        let f = Fixture::new();
        let ctx = f.ctx();
        let q = f.query(1);
        let skel = PlanSkeleton::build(&ctx, &q);
        let completer = BatchCompleter::new();
        let mut buf = PlanBuffer::new();
        completer.emit_into(&skel, 0, &mut buf);
    }
}
