//! # planner — plan enumeration and the full resource cost model
//!
//! This crate plays the role of the paper's query optimizer plus its cost
//! model (Sections IV-D and V):
//!
//! * [`estimator`] — eq. 8 (cache execution), eq. 9 (backend + network
//!   execution) and eqs. 10–15 (structure build & maintenance costs), all
//!   parameterised by [`estimator::CostParams`] whose defaults reproduce
//!   the paper's setup (`l_cpu = 1`, `f_n = 1`, `l = 0`, 25 Mbps,
//!   `f_cpu = 0.014`).
//! * [`scaling`] — the multi-node speed-up law calibrated to the paper's
//!   SDSS measurement: "a query can be sped up 2× using only 25 % extra
//!   CPU overhead using 3 CPU nodes in parallel".
//! * [`candidates`] — the candidate-index generator standing in for DB2's
//!   "recommend indexes" mode (the paper uses its top 65 candidates).
//! * [`enumerate`] — produces the plan set `P_Q = P_exist ∪ P_pos` for a
//!   query against the current cache state.
//! * [`skeleton`] — the cache-independent half of enumeration
//!   ([`PlanSkeleton`]) plus the cheap per-node completion phase, so a
//!   fleet quote round plans each query once instead of once per node;
//!   [`SkeletonCache`] shares built skeletons fleet-wide under the
//!   query's planning fingerprint.
//! * [`batch`] — structure-major batched completion: one
//!   [`BatchCompleter`] pass binds a skeleton against N nodes' cache
//!   states at once, turning N independent cache probes per structure
//!   into dense sweeps (bit-identical to N per-node completions).
//! * [`soa`] — struct-of-arrays projection of the selection-hot plan
//!   fields (time, price, existing flag).
//! * [`skyline`] — keeps only the (time, price)-Pareto plans, as the
//!   paper's footnote 2 prescribes.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod candidates;
pub mod enumerate;
pub mod estimator;
pub mod plan;
pub mod scaling;
pub mod skeleton;
pub mod skyline;
pub mod soa;

pub use batch::{complete_plans_batch, BatchCompleter, CacheView};
pub use candidates::{generate_candidates, CandidateIndex, TableCandidate};
pub use enumerate::{
    enumerate_plans, enumerate_plans_into, EnumerationOptions, PlanBuffer, PlannerContext,
};
pub use estimator::{CacheExecBase, CostParams, Estimator};
pub use plan::{PlanShape, QueryPlan};
pub use scaling::ParallelModel;
pub use skeleton::{
    complete_plans_into, planning_fingerprint, LazySkeleton, PlanSkeleton, SkeletonCache,
    SkeletonCacheCounters,
};
pub use skyline::{skyline_filter, skyline_partition, skyline_partition_hot};
pub use soa::PlanHot;
