//! Deterministic pseudo-random numbers.
//!
//! Every simulation run must be a pure function of `(config, seed)` so that
//! the paper-claim tests and the figure harnesses are reproducible. We use
//! xoshiro256** seeded through SplitMix64 — the standard pairing recommended
//! by the xoshiro authors — implemented here directly (≈40 lines) rather
//! than pulling in another dependency.

/// A small, fast, deterministic RNG (xoshiro256**, SplitMix64-seeded).
///
/// Not cryptographically secure; it drives workload synthesis only.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { state }
    }

    /// Derives an independent child stream; used to give each simulator
    /// component (arrivals, templates, locality, …) its own stream so adding
    /// draws in one component never perturbs another.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::new(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]` — safe to feed into `ln()`.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0) is meaningless");
        // Rejection loop terminates with overwhelming probability.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let m = (r as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "inverted range [{lo}, {hi})");
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.next_below(xs.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn next_below_is_in_bounds_and_roughly_uniform() {
        let mut rng = SimRng::new(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow generous 10% slack.
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_range_endpoints() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(99);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent1 = SimRng::new(5);
        let mut parent2 = SimRng::new(5);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        let mut other = SimRng::new(5).fork(2);
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::new(1);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SimRng::new(8);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 hits {hits}");
    }
}
