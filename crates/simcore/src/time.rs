//! Virtual time for the simulator.
//!
//! Both types wrap an `f64` measured in **seconds**. Construction rejects
//! NaN, so the types are totally ordered and safe to use as event-queue keys.
//! Negative *durations* are rejected; negative *times* are allowed only
//! through subtraction (the queue never schedules before zero).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation clock, in seconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds. Always finite and non-negative.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or infinite — a corrupted clock must fail
    /// loudly rather than silently reorder the event queue.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite(), "SimTime must be finite, got {secs}");
        SimTime(secs)
    }

    /// Seconds since simulation start.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Time elapsed since `earlier`. Saturates to zero if `earlier` is later
    /// (callers comparing accrual checkpoints never want a negative accrual).
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN, infinite or negative.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration must be finite and non-negative, got {secs}"
        );
        SimDuration(secs)
    }

    /// Creates a duration from minutes.
    #[must_use]
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Creates a duration from hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Creates a duration from days.
    #[must_use]
    pub fn from_days(days: f64) -> Self {
        Self::from_secs(days * 86_400.0)
    }

    /// Duration in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Duration in hours.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// True if this duration is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for SimTime {}
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction forbids NaN, so partial_cmp is total here.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}
impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Eq for SimDuration {}
impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimDuration is never NaN")
    }
}
impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    /// Panics if `rhs` is later than `self` (duration would be negative).
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 3600.0 {
            write!(f, "{:.2}h", self.0 / 3600.0)
        } else if self.0 >= 60.0 {
            write!(f, "{:.2}m", self.0 / 60.0)
        } else {
            write!(f, "{:.3}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn add_duration_advances_clock() {
        let t = SimTime::from_secs(10.0) + SimDuration::from_secs(5.0);
        assert_eq!(t.as_secs(), 15.0);
    }

    #[test]
    fn subtraction_yields_elapsed() {
        let d = SimTime::from_secs(12.0) - SimTime::from_secs(2.0);
        assert_eq!(d.as_secs(), 10.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        let _ = SimDuration::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1.0);
        let late = SimTime::from_secs(5.0);
        assert_eq!(late.saturating_since(early).as_secs(), 4.0);
        assert_eq!(early.saturating_since(late).as_secs(), 0.0);
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(SimDuration::from_mins(2.0).as_secs(), 120.0);
        assert_eq!(SimDuration::from_hours(1.0).as_secs(), 3600.0);
        assert_eq!(SimDuration::from_days(1.0).as_secs(), 86_400.0);
        assert_eq!(SimDuration::from_hours(2.0).as_hours(), 2.0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10.0);
        assert_eq!((d * 2.5).as_secs(), 25.0);
        assert_eq!((d / 4.0).as_secs(), 2.5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_secs(5400.0).to_string(), "1.50h");
        assert_eq!(SimDuration::from_secs(90.0).to_string(), "1.50m");
        assert_eq!(SimDuration::from_secs(0.5).to_string(), "0.500s");
        assert_eq!(SimTime::from_secs(1.5).to_string(), "t=1.500s");
    }
}
