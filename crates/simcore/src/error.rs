//! Error type shared by the simulation substrate.

use std::fmt;

/// Errors surfaced by simulation components.
///
/// The kernel itself treats programmer errors (scheduling into the past,
/// NaN times) as panics; `SimError` is for *configuration* problems that a
/// caller can reasonably be handed back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A configuration value was out of its legal range.
    InvalidConfig {
        /// Which field was invalid.
        field: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// A named entity was not found.
    NotFound {
        /// Entity kind, e.g. `"table"`.
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration for `{field}`: {reason}")
            }
            SimError::NotFound { kind, name } => write!(f, "{kind} `{name}` not found"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::InvalidConfig {
            field: "interval",
            reason: "must be positive".into(),
        };
        assert_eq!(
            e.to_string(),
            "invalid configuration for `interval`: must be positive"
        );
        let e = SimError::NotFound {
            kind: "table",
            name: "lineitem".into(),
        };
        assert_eq!(e.to_string(), "table `lineitem` not found");
    }
}
