//! Distribution samplers used by the workload generator.
//!
//! The paper's workload (Section VII-A) simulates "the query evolution of a
//! million SDSS-like queries": skewed data-access locality and temporal
//! locality. We implement the needed distributions directly on top of
//! [`crate::rng::SimRng`]:
//!
//! * [`Exponential`] — Poisson inter-arrival gaps.
//! * [`Zipf`] — skewed popularity of data regions / templates (exact
//!   cumulative-table sampler, O(log n) per draw).
//! * [`Discrete`] — weighted template choice (alias-free cumulative search;
//!   the distributions have ≤ a few dozen outcomes).
//! * [`BoundedPareto`] — heavy-tailed result sizes.

use crate::rng::SimRng;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential sampler.
    ///
    /// # Panics
    /// Panics unless `lambda > 0` and finite.
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "exponential rate must be positive, got {lambda}"
        );
        Exponential { lambda }
    }

    /// Mean of the distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    /// Draws a sample (inverse-CDF method).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        -rng.next_f64_open().ln() / self.lambda
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s > 0`:
/// `P(k) ∝ k^{-s}`.
///
/// Construction precomputes the cumulative mass table (O(n) memory,
/// O(log n) per draw). The workload generator uses at most a few tens of
/// thousands of ranks (data regions / templates), so the exact table is both
/// fast enough and trivially correct — preferable to a rejection scheme for
/// a simulator whose results must be auditable.
#[derive(Debug, Clone)]
pub struct Zipf {
    s: f64,
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf sampler over `1..=n` with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not positive/finite.
    #[must_use]
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s > 0.0,
            "Zipf exponent must be > 0, got {s}"
        );
        let mut cumulative = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cumulative.push(acc);
        }
        Zipf { s, cumulative }
    }

    /// Number of ranks.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.cumulative.len() as u64
    }

    /// Exponent `s`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Probability mass of rank `k` (1-based).
    ///
    /// # Panics
    /// Panics if `k` is out of `1..=n`.
    #[must_use]
    pub fn pmf(&self, k: u64) -> f64 {
        assert!(k >= 1 && k <= self.n(), "rank {k} out of range");
        let total = *self.cumulative.last().expect("non-empty");
        (k as f64).powf(-self.s) / total
    }

    /// Draws a rank in `1..=n` (rank 1 is the most popular).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.next_f64() * total;
        let idx = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        (idx.min(self.cumulative.len() - 1) + 1) as u64
    }
}

/// Discrete distribution over `0..weights.len()` proportional to the weights.
#[derive(Debug, Clone)]
pub struct Discrete {
    cumulative: Vec<f64>,
}

impl Discrete {
    /// Builds a sampler from non-negative weights (not all zero).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/non-finite value,
    /// or sums to zero.
    #[must_use]
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "Discrete needs at least one weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights sum to zero");
        Discrete { cumulative }
    }

    /// Number of outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if there are no outcomes (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws an outcome index.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.next_f64() * total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Bounded Pareto distribution on `[lo, hi]` with shape `alpha`.
///
/// Used for heavy-tailed synthetic result sizes ("result heavy" queries,
/// Section VI of the paper).
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto sampler.
    ///
    /// # Panics
    /// Panics unless `0 < lo < hi` and `alpha > 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Self {
        assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi, got [{lo}, {hi}]");
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be > 0");
        BoundedPareto { lo, hi, alpha }
    }

    /// Draws a sample via inverse CDF.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.next_f64();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        let x = -(u * ha - u * la - ha) / (ha * la);
        x.powf(-1.0 / self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean_converges() {
        let exp = Exponential::new(0.5); // mean 2.0
        let mut rng = SimRng::new(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert_eq!(exp.mean(), 2.0);
    }

    #[test]
    fn exponential_is_positive() {
        let exp = Exponential::new(10.0);
        let mut rng = SimRng::new(1);
        for _ in 0..1000 {
            assert!(exp.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn zipf_ranks_in_range() {
        let z = Zipf::new(100, 1.1);
        let mut rng = SimRng::new(2);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SimRng::new(3);
        let n = 50_000;
        let top10 = (0..n).filter(|_| z.sample(&mut rng) <= 10).count();
        // For s=1, n=1000 the top-10 mass is ~ H(10)/H(1000) ≈ 0.39.
        let frac = top10 as f64 / n as f64;
        assert!(frac > 0.3 && frac < 0.5, "top-10 fraction {frac}");
    }

    #[test]
    fn zipf_handles_s_not_one() {
        for s in [0.5, 0.8, 1.5, 2.0] {
            let z = Zipf::new(50, s);
            let mut rng = SimRng::new(4);
            let mut counts = vec![0u32; 51];
            for _ in 0..20_000 {
                counts[z.sample(&mut rng) as usize] += 1;
            }
            // Rank 1 must be the strict mode.
            let max_rank = counts
                .iter()
                .enumerate()
                .skip(1)
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(max_rank, 1, "s={s}: mode at rank {max_rank}");
        }
    }

    #[test]
    fn zipf_single_rank_degenerates() {
        let z = Zipf::new(1, 1.0);
        let mut rng = SimRng::new(5);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn discrete_respects_weights() {
        let d = Discrete::new(&[1.0, 0.0, 3.0]);
        let mut rng = SimRng::new(6);
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight outcome drawn");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn discrete_single_outcome() {
        let d = Discrete::new(&[0.7]);
        let mut rng = SimRng::new(7);
        for _ in 0..50 {
            assert_eq!(d.sample(&mut rng), 0);
        }
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn discrete_rejects_all_zero() {
        let _ = Discrete::new(&[0.0, 0.0]);
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let p = BoundedPareto::new(1.0, 1000.0, 1.2);
        let mut rng = SimRng::new(8);
        for _ in 0..10_000 {
            let x = p.sample(&mut rng);
            assert!((1.0..=1000.0 + 1e-9).contains(&x), "sample {x}");
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        let p = BoundedPareto::new(1.0, 10_000.0, 1.1);
        let mut rng = SimRng::new(9);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| p.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[n / 2];
        assert!(mean > 2.0 * median, "mean {mean} vs median {median}");
    }
}
