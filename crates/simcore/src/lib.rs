//! # simcore — discrete-event simulation kernel
//!
//! The substrate every other crate in this workspace runs on. The paper
//! ("An Economic Model for Self-Tuned Cloud Caching", ICDE 2009) evaluates
//! its economy with a *simulated* cloud cache; this crate provides the
//! simulation primitives:
//!
//! * [`time`] — virtual time ([`SimTime`]) and durations ([`SimDuration`])
//!   as validated, totally-ordered `f64` second newtypes.
//! * [`rng`] — a deterministic, seedable [`SimRng`] (SplitMix64 +
//!   xoshiro256**): every simulation run is a pure function of its seed.
//! * [`sample`] — distribution samplers built from first principles
//!   (exponential, Zipf, discrete weighted, bounded Pareto) so the workspace
//!   does not need `rand_distr`.
//! * [`events`] — a stable (FIFO-on-ties) priority event queue.
//! * [`arrival`] — query arrival processes: fixed-interval (the paper's
//!   1/10/30/60 s grid), Poisson, on/off bursty, and trace replay.
//! * [`network`] — the deterministic latency/throughput WAN model behind
//!   eq. 9 and eq. 12 of the paper.
//!
//! Nothing in this crate knows about queries, caches or money.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrival;
pub mod error;
pub mod events;
pub mod network;
pub mod rng;
pub mod sample;
pub mod time;

pub use arrival::{ArrivalProcess, FixedInterval, OnOffBursty, PoissonProcess, TraceArrivals};
pub use error::SimError;
pub use events::EventQueue;
pub use network::NetworkModel;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
