//! The WAN model between the cloud cache and the back-end databases.
//!
//! Eq. 9 and eq. 12 of the paper model every transfer as
//! `time = l + size / t` where `l` is one-way latency and `t` throughput.
//! The experimental setup uses `l = 0` and `t = 25 Mbps` — "the maximum
//! throughput between two database nodes for SDSS" (Section VII-A, citing
//! Wang et al., ICDE 2008).

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Deterministic latency + throughput network model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way latency added to every transfer.
    pub latency: SimDuration,
    /// Sustained throughput in bytes per second.
    pub throughput_bytes_per_sec: f64,
}

impl NetworkModel {
    /// The paper's experimental network: zero latency, 25 Mbps.
    #[must_use]
    pub fn paper_sdss() -> Self {
        NetworkModel {
            latency: SimDuration::ZERO,
            throughput_bytes_per_sec: 25e6 / 8.0, // 25 megabits/s → bytes/s
        }
    }

    /// Creates a model from latency and a throughput in megabits/second.
    ///
    /// # Panics
    /// Panics unless throughput is positive and finite.
    #[must_use]
    pub fn new(latency: SimDuration, throughput_mbps: f64) -> Self {
        assert!(
            throughput_mbps.is_finite() && throughput_mbps > 0.0,
            "throughput must be positive, got {throughput_mbps}"
        );
        NetworkModel {
            latency,
            throughput_bytes_per_sec: throughput_mbps * 1e6 / 8.0,
        }
    }

    /// Time to move `bytes` across the link: `l + bytes / t`.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::from_secs(bytes as f64 / self.throughput_bytes_per_sec)
    }

    /// Throughput in megabits per second (for reports).
    #[must_use]
    pub fn throughput_mbps(&self) -> f64 {
        self.throughput_bytes_per_sec * 8.0 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_network_is_25_mbps_zero_latency() {
        let n = NetworkModel::paper_sdss();
        assert_eq!(n.throughput_mbps(), 25.0);
        assert!(n.latency.is_zero());
    }

    #[test]
    fn transfer_time_is_linear_in_bytes() {
        let n = NetworkModel::new(SimDuration::ZERO, 8.0); // 1 MB/s
        assert!((n.transfer_time(1_000_000).as_secs() - 1.0).abs() < 1e-9);
        assert!((n.transfer_time(2_000_000).as_secs() - 2.0).abs() < 1e-9);
        assert!(n.transfer_time(0).is_zero());
    }

    #[test]
    fn latency_is_added_once() {
        let n = NetworkModel::new(SimDuration::from_secs(0.5), 8.0);
        let t = n.transfer_time(1_000_000);
        assert!((t.as_secs() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn sdss_transfer_example() {
        // 100 MB result at 25 Mbps = 32 s.
        let n = NetworkModel::paper_sdss();
        let t = n.transfer_time(100_000_000);
        assert!((t.as_secs() - 32.0).abs() < 1e-6, "got {}", t.as_secs());
    }
}
