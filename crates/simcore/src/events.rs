//! A stable priority event queue for discrete-event simulation.
//!
//! `std::collections::BinaryHeap` is a max-heap and is *not* stable for
//! equal keys; simulators need min-first ordering and FIFO tie-breaking so
//! that two events scheduled for the same instant fire in schedule order
//! (otherwise runs would be legal-but-surprising). [`EventQueue`] wraps the
//! heap with a monotone sequence number to provide both.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry: ordered by `(time, seq)` ascending.
#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-first, FIFO-on-ties event queue keyed by [`SimTime`].
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation clock: the timestamp of the last popped event
    /// (zero before the first pop).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock — scheduling into
    /// the past is always a simulator bug.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule at {at} before current clock {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "heap produced a past event");
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Drains every remaining event in time order.
    pub fn drain_ordered(&mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(x) = self.pop() {
            out.push(x);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        let order: Vec<&str> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(5.0), i);
        }
        let order: Vec<i32> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(t(1.5), ());
        q.schedule(t(4.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(1.5));
        q.pop();
        assert_eq!(q.now(), t(4.0));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), t(4.0), "clock holds after drain");
    }

    #[test]
    #[should_panic(expected = "before current clock")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(10.0), ());
        q.pop();
        q.schedule(t(5.0), ());
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(t(2.0), 1);
        q.pop();
        q.schedule(q.now(), 2); // zero-delay follow-up event
        let (at, e) = q.pop().unwrap();
        assert_eq!(at, t(2.0));
        assert_eq!(e, 2);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(t(7.0), ());
        assert_eq!(q.peek_time(), Some(t(7.0)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), "arrive");
        let (at, _) = q.pop().unwrap();
        // Completion scheduled relative to the arrival.
        q.schedule(at + SimDuration::from_secs(0.5), "complete");
        q.schedule(t(2.0), "arrive2");
        let order: Vec<&str> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["complete", "arrive2"]);
    }
}
