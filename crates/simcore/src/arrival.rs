//! Query arrival processes.
//!
//! The paper's experiments sweep the *query inter-arrival time* over
//! {1, 10, 30, 60} seconds (Figures 4 and 5) with deterministic spacing;
//! [`FixedInterval`] models exactly that. [`PoissonProcess`] and
//! [`OnOffBursty`] are provided for the sensitivity studies, and
//! [`TraceArrivals`] replays an explicit timestamp list.

use crate::rng::SimRng;
use crate::sample::Exponential;
use crate::time::{SimDuration, SimTime};

/// A source of successive arrival instants.
///
/// Implementations must be monotone: each call returns a time
/// `>= ` the previously returned time.
pub trait ArrivalProcess {
    /// Returns the next arrival instant, or `None` when the process is
    /// exhausted (only [`TraceArrivals`] ever exhausts).
    fn next_arrival(&mut self, rng: &mut SimRng) -> Option<SimTime>;

    /// Mean inter-arrival gap if the process has one (for reporting).
    fn mean_gap(&self) -> Option<SimDuration> {
        None
    }
}

/// Deterministic arrivals every `interval` seconds: `t = i * interval`.
#[derive(Debug, Clone)]
pub struct FixedInterval {
    interval: SimDuration,
    next: SimTime,
}

impl FixedInterval {
    /// Creates a fixed-interval process starting at `interval` (the first
    /// query arrives one interval after simulation start).
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "interval must be positive");
        FixedInterval {
            interval,
            next: SimTime::ZERO + interval,
        }
    }
}

impl ArrivalProcess for FixedInterval {
    fn next_arrival(&mut self, _rng: &mut SimRng) -> Option<SimTime> {
        let at = self.next;
        self.next = at + self.interval;
        Some(at)
    }

    fn mean_gap(&self) -> Option<SimDuration> {
        Some(self.interval)
    }
}

/// Poisson arrivals with the given mean inter-arrival gap.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    gap: Exponential,
    mean: SimDuration,
    last: SimTime,
}

impl PoissonProcess {
    /// Creates a Poisson process with mean gap `mean_gap`.
    ///
    /// # Panics
    /// Panics if `mean_gap` is zero.
    #[must_use]
    pub fn new(mean_gap: SimDuration) -> Self {
        assert!(!mean_gap.is_zero(), "mean gap must be positive");
        PoissonProcess {
            gap: Exponential::new(1.0 / mean_gap.as_secs()),
            mean: mean_gap,
            last: SimTime::ZERO,
        }
    }
}

impl ArrivalProcess for PoissonProcess {
    fn next_arrival(&mut self, rng: &mut SimRng) -> Option<SimTime> {
        let gap = SimDuration::from_secs(self.gap.sample(rng));
        self.last += gap;
        Some(self.last)
    }

    fn mean_gap(&self) -> Option<SimDuration> {
        Some(self.mean)
    }
}

/// A two-state Markov-modulated process: bursts of closely spaced queries
/// ("on") separated by quiet periods ("off").
///
/// Exercises the economy's adaptivity: during bursts the amortisation of
/// structure build cost pays off quickly; during lulls maintenance cost
/// accrues unpaid (Section IV-D footnote 3 of the paper).
#[derive(Debug, Clone)]
pub struct OnOffBursty {
    on_gap: Exponential,
    burst_len: u64,
    off_gap: Exponential,
    remaining_in_burst: u64,
    last: SimTime,
}

impl OnOffBursty {
    /// Creates a bursty process.
    ///
    /// * `on_gap` — mean gap between queries inside a burst;
    /// * `burst_len` — mean number of queries per burst (geometric);
    /// * `off_gap` — mean gap between bursts.
    ///
    /// # Panics
    /// Panics if any mean is zero.
    #[must_use]
    pub fn new(on_gap: SimDuration, burst_len: u64, off_gap: SimDuration) -> Self {
        assert!(
            !on_gap.is_zero() && !off_gap.is_zero(),
            "gaps must be positive"
        );
        assert!(burst_len > 0, "burst length must be positive");
        OnOffBursty {
            on_gap: Exponential::new(1.0 / on_gap.as_secs()),
            burst_len,
            off_gap: Exponential::new(1.0 / off_gap.as_secs()),
            remaining_in_burst: 0,
            last: SimTime::ZERO,
        }
    }
}

impl ArrivalProcess for OnOffBursty {
    fn next_arrival(&mut self, rng: &mut SimRng) -> Option<SimTime> {
        if self.remaining_in_burst == 0 {
            // Enter a new burst after an off period.
            self.remaining_in_burst = 1 + rng.next_below(2 * self.burst_len);
            let off = SimDuration::from_secs(self.off_gap.sample(rng));
            self.last += off;
        } else {
            let gap = SimDuration::from_secs(self.on_gap.sample(rng));
            self.last += gap;
        }
        self.remaining_in_burst -= 1;
        Some(self.last)
    }
}

/// Replays an explicit, pre-sorted list of arrival instants.
#[derive(Debug, Clone)]
pub struct TraceArrivals {
    times: Vec<SimTime>,
    cursor: usize,
}

impl TraceArrivals {
    /// Creates a trace replay.
    ///
    /// # Panics
    /// Panics if `times` is not sorted ascending.
    #[must_use]
    pub fn new(times: Vec<SimTime>) -> Self {
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "trace must be sorted ascending"
        );
        TraceArrivals { times, cursor: 0 }
    }

    /// Number of arrivals left to replay.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.times.len() - self.cursor
    }
}

impl ArrivalProcess for TraceArrivals {
    fn next_arrival(&mut self, _rng: &mut SimRng) -> Option<SimTime> {
        let at = self.times.get(self.cursor).copied()?;
        self.cursor += 1;
        Some(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_interval_is_exact() {
        let mut p = FixedInterval::new(SimDuration::from_secs(10.0));
        let mut rng = SimRng::new(0);
        let times: Vec<f64> = (0..5)
            .map(|_| p.next_arrival(&mut rng).unwrap().as_secs())
            .collect();
        assert_eq!(times, vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(p.mean_gap().unwrap().as_secs(), 10.0);
    }

    #[test]
    fn poisson_mean_gap_converges() {
        let mut p = PoissonProcess::new(SimDuration::from_secs(2.0));
        let mut rng = SimRng::new(17);
        let n = 50_000;
        let mut last = SimTime::ZERO;
        let mut total = 0.0;
        for _ in 0..n {
            let at = p.next_arrival(&mut rng).unwrap();
            total += (at - last).as_secs();
            last = at;
        }
        let mean = total / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean gap {mean}");
    }

    #[test]
    fn poisson_is_monotone() {
        let mut p = PoissonProcess::new(SimDuration::from_secs(1.0));
        let mut rng = SimRng::new(4);
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            let at = p.next_arrival(&mut rng).unwrap();
            assert!(at >= last);
            last = at;
        }
    }

    #[test]
    fn bursty_is_monotone_and_bursty() {
        let mut p = OnOffBursty::new(
            SimDuration::from_secs(0.1),
            20,
            SimDuration::from_secs(100.0),
        );
        let mut rng = SimRng::new(5);
        let mut gaps = Vec::new();
        let mut last = SimTime::ZERO;
        for _ in 0..2000 {
            let at = p.next_arrival(&mut rng).unwrap();
            gaps.push((at - last).as_secs());
            last = at;
        }
        let long = gaps.iter().filter(|&&g| g > 10.0).count();
        let short = gaps.iter().filter(|&&g| g < 1.0).count();
        assert!(long > 10, "expected off periods, saw {long}");
        assert!(short > 1000, "expected bursts, saw {short}");
    }

    #[test]
    fn trace_replays_and_exhausts() {
        let ts: Vec<SimTime> = [1.0, 2.0, 2.0, 5.0]
            .iter()
            .map(|&s| SimTime::from_secs(s))
            .collect();
        let mut p = TraceArrivals::new(ts);
        let mut rng = SimRng::new(0);
        assert_eq!(p.remaining(), 4);
        let mut seen = Vec::new();
        while let Some(t) = p.next_arrival(&mut rng) {
            seen.push(t.as_secs());
        }
        assert_eq!(seen, vec![1.0, 2.0, 2.0, 5.0]);
        assert_eq!(p.remaining(), 0);
        assert!(p.next_arrival(&mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_rejected() {
        let _ = TraceArrivals::new(vec![SimTime::from_secs(2.0), SimTime::from_secs(1.0)]);
    }
}
