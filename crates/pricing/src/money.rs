//! Exact fixed-point money.
//!
//! `Money` wraps an `i128` count of **nano-dollars** (10⁻⁹ $). Why not
//! `f64`: the Fig. 4 experiment accumulates on the order of 10⁶–10⁸
//! individual charges, and the economy's invariants ("the ledger balances",
//! "profit = payment − cost") are asserted *exactly* in tests. Why not a
//! decimal crate: the operations needed are tiny (add/sub/scale/compare)
//! and an `i128` of nano-dollars holds ±1.7 × 10²⁰ dollars — overflow is
//! unreachable for any simulation this side of hyperinflation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Nano-dollars per dollar.
const NANOS_PER_DOLLAR: i128 = 1_000_000_000;

/// An exact amount of money in nano-dollars. May be negative (debts,
/// deltas); the economy layer decides where negativity is legal.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Money(i128);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0);

    /// Constructs from whole nano-dollars.
    #[must_use]
    pub const fn from_nanos(nanos: i128) -> Self {
        Money(nanos)
    }

    /// Constructs from a dollar amount, rounding to the nearest nano-dollar.
    ///
    /// # Panics
    /// Panics if `dollars` is NaN or infinite.
    #[must_use]
    pub fn from_dollars(dollars: f64) -> Self {
        assert!(dollars.is_finite(), "money must be finite, got {dollars}");
        Money((dollars * NANOS_PER_DOLLAR as f64).round() as i128)
    }

    /// Constructs from whole cents.
    #[must_use]
    pub const fn from_cents(cents: i128) -> Self {
        Money(cents * (NANOS_PER_DOLLAR / 100))
    }

    /// The raw nano-dollar count.
    #[must_use]
    pub const fn as_nanos(self) -> i128 {
        self.0
    }

    /// Approximate dollar value (for display and plotting only — never for
    /// accounting decisions).
    #[must_use]
    pub fn as_dollars(self) -> f64 {
        self.0 as f64 / NANOS_PER_DOLLAR as f64
    }

    /// True if the amount is exactly zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// True if strictly positive.
    #[must_use]
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// True if strictly negative.
    #[must_use]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Scales by a non-negative real factor, rounding to nearest.
    ///
    /// # Panics
    /// Panics if `factor` is NaN, infinite or negative (scaling money by a
    /// negative factor is always an accounting bug; use [`Neg`] explicitly).
    #[must_use]
    pub fn scale(self, factor: f64) -> Money {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        Money((self.0 as f64 * factor).round() as i128)
    }

    /// Divides evenly among `n` parts, rounding toward zero.
    ///
    /// Used for eq. 7 of the paper (`f_S(n, Build) = Build / n`).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn amortize_over(self, n: u64) -> Money {
        assert!(n > 0, "cannot amortize over zero queries");
        Money(self.0 / n as i128)
    }

    /// The larger of two amounts.
    #[must_use]
    pub fn max(self, other: Money) -> Money {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two amounts.
    #[must_use]
    pub fn min(self, other: Money) -> Money {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Clamps negative amounts to zero.
    #[must_use]
    pub fn clamp_non_negative(self) -> Money {
        self.max(Money::ZERO)
    }

    /// Saturating subtraction: `max(self - other, 0)`.
    #[must_use]
    pub fn saturating_sub(self, other: Money) -> Money {
        (self - other).clamp_non_negative()
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0.checked_add(rhs.0).expect("money overflow"))
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        *self = *self + rhs;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0.checked_sub(rhs.0).expect("money underflow"))
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        *self = *self - rhs;
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Mul<u64> for Money {
    type Output = Money;
    fn mul(self, rhs: u64) -> Money {
        Money(self.0.checked_mul(rhs as i128).expect("money overflow"))
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, Add::add)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        let dollars = abs / NANOS_PER_DOLLAR as u128;
        let frac = abs % NANOS_PER_DOLLAR as u128;
        // Show 4 decimal places: enough to see per-query charges.
        write!(f, "{sign}${dollars}.{:04}", frac / 100_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dollars_round_trip() {
        let m = Money::from_dollars(1.25);
        assert_eq!(m.as_nanos(), 1_250_000_000);
        assert!((m.as_dollars() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn cents_constructor() {
        assert_eq!(Money::from_cents(10), Money::from_dollars(0.10));
        assert_eq!(Money::from_cents(-5).as_dollars(), -0.05);
    }

    #[test]
    fn arithmetic_is_exact() {
        // 0.1 + 0.2 == 0.3 exactly, unlike f64.
        let sum = Money::from_dollars(0.1) + Money::from_dollars(0.2);
        assert_eq!(sum, Money::from_dollars(0.3));
    }

    #[test]
    fn million_micro_charges_sum_exactly() {
        let tick = Money::from_nanos(123);
        let total: Money = (0..1_000_000).map(|_| tick).sum();
        assert_eq!(total.as_nanos(), 123_000_000);
    }

    #[test]
    fn amortize_divides_toward_zero() {
        let build = Money::from_dollars(10.0);
        assert_eq!(build.amortize_over(4), Money::from_dollars(2.5));
        let odd = Money::from_nanos(10);
        assert_eq!(odd.amortize_over(3).as_nanos(), 3);
    }

    #[test]
    #[should_panic(expected = "zero queries")]
    fn amortize_over_zero_panics() {
        let _ = Money::from_dollars(1.0).amortize_over(0);
    }

    #[test]
    fn scale_rounds_to_nearest() {
        let m = Money::from_nanos(10);
        assert_eq!(m.scale(0.25).as_nanos(), 3); // 2.5 rounds to 3
        assert_eq!(m.scale(0.0), Money::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scale_panics() {
        let _ = Money::from_dollars(1.0).scale(-1.0);
    }

    #[test]
    fn ordering_and_clamps() {
        let a = Money::from_dollars(1.0);
        let b = Money::from_dollars(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!((a - b).clamp_non_negative(), Money::ZERO);
        assert_eq!(a.saturating_sub(b), Money::ZERO);
        assert_eq!(b.saturating_sub(a), a);
    }

    #[test]
    fn predicates() {
        assert!(Money::ZERO.is_zero());
        assert!(Money::from_dollars(0.5).is_positive());
        assert!((-Money::from_dollars(0.5)).is_negative());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Money::from_dollars(1.25).to_string(), "$1.2500");
        assert_eq!((-Money::from_dollars(0.5)).to_string(), "-$0.5000");
        assert_eq!(Money::ZERO.to_string(), "$0.0000");
        assert_eq!(Money::from_dollars(1234.5678).to_string(), "$1234.5678");
    }

    #[test]
    fn mul_by_count() {
        assert_eq!(Money::from_cents(3) * 100, Money::from_dollars(3.0));
    }
}
