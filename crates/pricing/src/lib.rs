//! # pricing — money arithmetic and cloud resource price catalogs
//!
//! The paper's economy prices *every* resource — CPU time, disk storage,
//! disk I/O and network bandwidth (Section V) — with constants "imported
//! from Amazon EC2" (Section VII-A). This crate provides:
//!
//! * [`money::Money`] — exact fixed-point money (`i128` nano-dollars).
//!   A simulated year of per-query micro-charges must sum without drift and
//!   the cloud ledger must balance to the nano-dollar.
//! * [`rates::ResourceRates`] — per-resource unit prices in the units the
//!   cost model consumes (per node-second, per byte-second, per byte moved,
//!   per I/O operation).
//! * [`catalog`] — named catalogs: the 2009 Amazon EC2 list prices used by
//!   the paper, a GoGrid-like catalog (free bandwidth — the pricing regime
//!   the introduction cites as motivation), and a builder for ablations.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod money;
pub mod rates;

pub use catalog::PriceCatalog;
pub use money::Money;
pub use rates::ResourceRates;
