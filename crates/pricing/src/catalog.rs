//! Named price catalogs.
//!
//! The paper states: "the cost values for the caching service are imported
//! from Amazon EC2" (Section VII-A). We encode the 2009 EC2/S3 list prices:
//!
//! * compute: $0.10 per small-instance hour,
//! * storage: $0.15 per GB-month,
//! * transfer in: $0.10 per GB,
//! * I/O: $0.10 per million requests (EBS pricing).
//!
//! The introduction also cites GoGrid's "network bandwidth for free" as
//! evidence that real clouds prorate different resource mixes; the
//! [`PriceCatalog::gogrid_2009`] catalog captures that regime and the
//! bypass-yield baseline is emulated with [`PriceCatalog::network_only`]
//! (every price except bandwidth is zero — Section VII-A).

use crate::rates::ResourceRates;
use serde::{Deserialize, Serialize};

const SECS_PER_HOUR: f64 = 3600.0;
const SECS_PER_MONTH: f64 = 30.0 * 86_400.0;
const BYTES_PER_GB: f64 = 1e9;

/// A named, self-describing set of resource prices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceCatalog {
    /// Human-readable catalog name (appears in experiment reports).
    pub name: String,
    /// The unit rates the cost model consumes.
    pub rates: ResourceRates,
    /// CPU node boot time in seconds (the paper's `b` in eq. 10).
    pub node_boot_secs: f64,
}

impl PriceCatalog {
    /// Amazon EC2 / S3 / EBS list prices circa 2009 — the paper's setting.
    #[must_use]
    pub fn ec2_2009() -> Self {
        PriceCatalog {
            name: "ec2-2009".to_owned(),
            rates: ResourceRates {
                // $0.10 per instance-hour.
                cpu_node_per_sec: 0.10 / SECS_PER_HOUR,
                // $0.15 per GB-month.
                disk_byte_per_sec: 0.15 / BYTES_PER_GB / SECS_PER_MONTH,
                // $0.10 per GB in.
                transfer_per_byte: 0.10 / BYTES_PER_GB,
                // $0.10 per million I/O requests.
                io_per_op: 0.10 / 1e6,
            },
            // EC2 small instances booted in about a minute in 2009.
            node_boot_secs: 60.0,
        }
    }

    /// GoGrid-like 2009 pricing: bandwidth free, compute/storage priced.
    #[must_use]
    pub fn gogrid_2009() -> Self {
        PriceCatalog {
            name: "gogrid-2009".to_owned(),
            rates: ResourceRates {
                // $0.19 per GB-RAM-hour ≈ small node hour.
                cpu_node_per_sec: 0.19 / SECS_PER_HOUR,
                disk_byte_per_sec: 0.15 / BYTES_PER_GB / SECS_PER_MONTH,
                transfer_per_byte: 0.0, // inbound bandwidth free
                io_per_op: 0.10 / 1e6,
            },
            node_boot_secs: 60.0,
        }
    }

    /// The bypass-yield emulation of Section VII-A: "associating cost only
    /// with network bandwidth, therefore setting costs for CPU, disk and
    /// I/O to zero".
    #[must_use]
    pub fn network_only() -> Self {
        PriceCatalog {
            name: "network-only".to_owned(),
            rates: ResourceRates {
                cpu_node_per_sec: 0.0,
                disk_byte_per_sec: 0.0,
                transfer_per_byte: 0.10 / BYTES_PER_GB,
                io_per_op: 0.0,
            },
            node_boot_secs: 60.0,
        }
    }

    /// Builder for ablation catalogs.
    #[must_use]
    pub fn custom(name: &str, rates: ResourceRates, node_boot_secs: f64) -> Self {
        assert!(
            node_boot_secs.is_finite() && node_boot_secs >= 0.0,
            "boot time must be finite and non-negative"
        );
        rates
            .validate()
            .map_err(|f| format!("bad rate {f}"))
            .unwrap();
        PriceCatalog {
            name: name.to_owned(),
            rates,
            node_boot_secs,
        }
    }

    /// Returns a copy with every price scaled by `factor` (price-level
    /// ablation: the economy's *decisions* should be scale-invariant).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "bad scale {factor}");
        PriceCatalog {
            name: format!("{}×{factor}", self.name),
            rates: ResourceRates {
                cpu_node_per_sec: self.rates.cpu_node_per_sec * factor,
                disk_byte_per_sec: self.rates.disk_byte_per_sec * factor,
                transfer_per_byte: self.rates.transfer_per_byte * factor,
                io_per_op: self.rates.io_per_op * factor,
            },
            node_boot_secs: self.node_boot_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Money;

    #[test]
    fn ec2_constants_match_2009_list_prices() {
        let c = PriceCatalog::ec2_2009();
        // One node-hour = $0.10.
        assert_eq!(c.rates.cpu_cost(3600.0), Money::from_dollars(0.10));
        // One GB-month = $0.15 (to rounding).
        let gb_month = c.rates.disk_cost(1_000_000_000, 30.0 * 86_400.0);
        assert!((gb_month.as_dollars() - 0.15).abs() < 1e-9);
        // One GB in = $0.10.
        assert_eq!(
            c.rates.transfer_cost(1_000_000_000),
            Money::from_dollars(0.10)
        );
        // One million I/Os = $0.10.
        assert_eq!(c.rates.io_cost(1e6), Money::from_dollars(0.10));
    }

    #[test]
    fn network_only_zeroes_everything_but_bandwidth() {
        let c = PriceCatalog::network_only();
        assert_eq!(c.rates.cpu_cost(1e6), Money::ZERO);
        assert_eq!(c.rates.disk_cost(u64::MAX, 1e6), Money::ZERO);
        assert_eq!(c.rates.io_cost(1e9), Money::ZERO);
        assert!(c.rates.transfer_cost(1_000_000_000).is_positive());
    }

    #[test]
    fn gogrid_has_free_bandwidth() {
        let c = PriceCatalog::gogrid_2009();
        assert_eq!(c.rates.transfer_cost(u64::MAX), Money::ZERO);
        assert!(c.rates.cpu_cost(3600.0).is_positive());
    }

    #[test]
    fn scaled_catalog_scales_all_rates() {
        let c = PriceCatalog::ec2_2009().scaled(2.0);
        assert_eq!(c.rates.cpu_cost(3600.0), Money::from_dollars(0.20));
        assert_eq!(c.name, "ec2-2009×2");
    }

    #[test]
    fn custom_validates() {
        let c = PriceCatalog::custom(
            "test",
            ResourceRates {
                cpu_node_per_sec: 1.0,
                disk_byte_per_sec: 0.0,
                transfer_per_byte: 0.0,
                io_per_op: 0.0,
            },
            5.0,
        );
        assert_eq!(c.node_boot_secs, 5.0);
    }

    #[test]
    #[should_panic]
    fn custom_rejects_nan_rate() {
        let _ = PriceCatalog::custom(
            "bad",
            ResourceRates {
                cpu_node_per_sec: f64::NAN,
                disk_byte_per_sec: 0.0,
                transfer_per_byte: 0.0,
                io_per_op: 0.0,
            },
            5.0,
        );
    }
}
