//! Per-resource unit prices in cost-model units.
//!
//! The paper's symbols (Section V):
//!
//! | symbol | meaning                               | field here              |
//! |--------|---------------------------------------|--------------------------|
//! | `u`,`c`| CPU node usage cost per unit time     | [`ResourceRates::cpu_node_per_sec`] |
//! | `c_d`  | disk storage cost per byte per unit time | [`ResourceRates::disk_byte_per_sec`] |
//! | `c_b`  | network transfer cost per byte        | [`ResourceRates::transfer_per_byte`] |
//! | `io`   | cost per logical I/O operation        | [`ResourceRates::io_per_op`] |

use crate::money::Money;
use serde::{Deserialize, Serialize};

/// Unit prices for the four resources the cost model charges.
///
/// All rates are [`f64`] dollars per base unit; the cost model multiplies a
/// rate by a usage quantity and rounds into [`Money`] exactly once per
/// charge, so no drift compounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceRates {
    /// Dollars per CPU-node-second (the paper's `u` and `c`).
    pub cpu_node_per_sec: f64,
    /// Dollars per byte of cache disk per second (the paper's `c_d`).
    pub disk_byte_per_sec: f64,
    /// Dollars per byte transferred from the back-end (the paper's `c_b`).
    pub transfer_per_byte: f64,
    /// Dollars per logical I/O operation (the paper's per-I/O price).
    pub io_per_op: f64,
}

impl ResourceRates {
    /// Charge for `secs` of one CPU node.
    #[must_use]
    pub fn cpu_cost(&self, secs: f64) -> Money {
        debug_assert!(secs >= 0.0);
        Money::from_dollars(self.cpu_node_per_sec * secs)
    }

    /// Charge for holding `bytes` on cache disk for `secs`.
    #[must_use]
    pub fn disk_cost(&self, bytes: u64, secs: f64) -> Money {
        debug_assert!(secs >= 0.0);
        Money::from_dollars(self.disk_byte_per_sec * bytes as f64 * secs)
    }

    /// Charge for moving `bytes` over the WAN.
    #[must_use]
    pub fn transfer_cost(&self, bytes: u64) -> Money {
        Money::from_dollars(self.transfer_per_byte * bytes as f64)
    }

    /// Charge for `ops` logical I/O operations.
    #[must_use]
    pub fn io_cost(&self, ops: f64) -> Money {
        debug_assert!(ops >= 0.0);
        Money::from_dollars(self.io_per_op * ops)
    }

    /// Validates that every rate is finite and non-negative.
    ///
    /// # Errors
    /// Returns the offending field name.
    pub fn validate(&self) -> Result<(), &'static str> {
        let checks = [
            (self.cpu_node_per_sec, "cpu_node_per_sec"),
            (self.disk_byte_per_sec, "disk_byte_per_sec"),
            (self.transfer_per_byte, "transfer_per_byte"),
            (self.io_per_op, "io_per_op"),
        ];
        for (v, name) in checks {
            if !v.is_finite() || v < 0.0 {
                return Err(name);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates() -> ResourceRates {
        ResourceRates {
            cpu_node_per_sec: 0.10 / 3600.0,
            disk_byte_per_sec: 1e-15,
            transfer_per_byte: 1e-10,
            io_per_op: 1e-7,
        }
    }

    #[test]
    fn cpu_cost_scales_with_time() {
        let r = rates();
        assert_eq!(r.cpu_cost(3600.0), Money::from_dollars(0.10));
        assert_eq!(r.cpu_cost(0.0), Money::ZERO);
    }

    #[test]
    fn disk_cost_scales_with_bytes_and_time() {
        let r = rates();
        let c = r.disk_cost(1_000_000_000, 1000.0);
        assert_eq!(c, Money::from_dollars(1e-15 * 1e9 * 1e3));
    }

    #[test]
    fn transfer_and_io() {
        let r = rates();
        assert_eq!(r.transfer_cost(1_000_000_000), Money::from_dollars(0.1));
        assert_eq!(r.io_cost(1_000_000.0), Money::from_dollars(0.1));
    }

    #[test]
    fn validation_catches_bad_rates() {
        let mut r = rates();
        assert!(r.validate().is_ok());
        r.io_per_op = f64::NAN;
        assert_eq!(r.validate(), Err("io_per_op"));
        r = rates();
        r.cpu_node_per_sec = -1.0;
        assert_eq!(r.validate(), Err("cpu_node_per_sec"));
    }
}
