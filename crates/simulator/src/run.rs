//! The coordinator loop.
//!
//! Drives arrivals through the configured policy, booking the cloud's
//! *actual* expenditure per step:
//!
//! * backend executions are pay-per-use (CPU + I/O + network, eq. 9);
//! * cache executions pay I/O per use, while cache CPU is covered by node
//!   *uptime* (the base node plus any extra nodes, charged continuously
//!   at `c` per second — eq. 11); booking both would double-count;
//! * cache disk is charged on the exact byte-seconds integral (eq. 13/15);
//! * structure builds are charged when the investment happens.

use std::sync::Arc;

use catalog::tpch::{tpch_schema, ScaleFactor};
use catalog::Schema;
use econ::EconConfig;
use planner::{generate_candidates, Estimator, PlannerContext};
use policies::{BypassYieldPolicy, CachePolicy, EconPolicy};
use simcore::arrival::{ArrivalProcess, FixedInterval, OnOffBursty, PoissonProcess};
use simcore::{NetworkModel, SimDuration, SimRng, SimTime};
use workload::WorkloadGenerator;

use crate::config::{ArrivalKind, Scheme, SimConfig};
use crate::results::RunResult;
use crate::step::RunAccumulator;

/// Instantiates the policy a [`Scheme`] names, against a schema and an
/// economy configuration (ignored by the bypass scheme).
///
/// Shared by [`Simulation`] and the fleet executor, which builds one
/// policy per cache node. The box is `Send` so fleet quote rounds can
/// fan per-node completions out over the persistent quote worker pool.
#[must_use]
pub fn make_policy(
    scheme: &Scheme,
    schema: &Arc<Schema>,
    econ: &EconConfig,
) -> Box<dyn CachePolicy + Send> {
    match scheme {
        Scheme::Bypass { cache_fraction } => {
            Box::new(BypassYieldPolicy::new(schema, *cache_fraction))
        }
        Scheme::EconCol => Box::new(EconPolicy::econ_col(econ.clone())),
        Scheme::EconCheap => Box::new(EconPolicy::econ_cheap(econ.clone())),
        Scheme::EconFast => Box::new(EconPolicy::econ_fast(econ.clone())),
        Scheme::Altruistic => Box::new(EconPolicy::altruistic(econ.clone())),
    }
}

/// Instantiates the arrival process an [`ArrivalKind`] names.
///
/// Shared by [`Simulation`] and the fleet's per-tenant streams.
#[must_use]
pub fn make_arrivals(kind: &ArrivalKind) -> Box<dyn ArrivalProcess> {
    match *kind {
        ArrivalKind::Fixed { interval_secs } => {
            Box::new(FixedInterval::new(SimDuration::from_secs(interval_secs)))
        }
        ArrivalKind::Poisson { mean_gap_secs } => {
            Box::new(PoissonProcess::new(SimDuration::from_secs(mean_gap_secs)))
        }
        ArrivalKind::Bursty {
            on_gap_secs,
            burst_len,
            off_gap_secs,
        } => Box::new(OnOffBursty::new(
            SimDuration::from_secs(on_gap_secs),
            burst_len,
            SimDuration::from_secs(off_gap_secs),
        )),
        ArrivalKind::Mmpp {
            calm_gap_secs,
            storm_gap_secs,
            calm_sojourn_secs,
            storm_sojourn_secs,
        } => Box::new(workload::MarkovModulated::new(
            calm_gap_secs,
            storm_gap_secs,
            calm_sojourn_secs,
            storm_sojourn_secs,
        )),
        ArrivalKind::Diurnal {
            mean_gap_secs,
            amplitude,
            period_secs,
            phase,
        } => Box::new(workload::DiurnalSinusoid::new(
            mean_gap_secs,
            amplitude,
            period_secs,
            phase,
        )),
    }
}

/// A prepared simulation: schema, candidates and estimator built once so
/// sweeps over schemes/intervals can share them.
pub struct Simulation {
    schema: Arc<Schema>,
    candidates: Vec<cache::IndexDef>,
    cand_index: planner::CandidateIndex,
    estimator: Estimator,
    config: SimConfig,
}

impl Simulation {
    /// Prepares a simulation from a validated config.
    ///
    /// # Panics
    /// Panics if the config is invalid.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid simulation config: {msg}");
        }
        let schema = Arc::new(tpch_schema(ScaleFactor(config.scale_factor)));
        let templates = workload::paper_templates(&schema);
        let candidates = generate_candidates(&schema, &templates, config.candidate_indexes);
        let cand_index = planner::CandidateIndex::build(&schema, &candidates);
        let estimator = Estimator::new(
            config.cost_params.clone(),
            config.prices.clone(),
            NetworkModel::paper_sdss(),
        );
        Simulation {
            schema,
            candidates,
            cand_index,
            estimator,
            config,
        }
    }

    /// The backend schema.
    #[must_use]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn make_policy(&self) -> Box<dyn CachePolicy + Send> {
        make_policy(&self.config.scheme, &self.schema, &self.config.econ)
    }

    fn make_arrivals(&self) -> Box<dyn ArrivalProcess> {
        make_arrivals(&self.config.arrival)
    }

    /// Executes the run.
    #[must_use]
    pub fn run(&self) -> RunResult {
        let ctx = PlannerContext {
            schema: &self.schema,
            candidates: &self.candidates,
            cand_index: &self.cand_index,
            estimator: &self.estimator,
        };
        let mut policy = self.make_policy();
        let mut arrivals = self.make_arrivals();
        let mut rng = SimRng::new(self.config.seed);
        let mut generator = WorkloadGenerator::new(
            Arc::clone(&self.schema),
            self.config.workload.clone(),
            self.config.seed ^ 0x57A7_1571C5,
        );

        let mut acc = RunAccumulator::new();
        let mut last_arrival = SimTime::ZERO;

        for _ in 0..self.config.num_queries {
            let now = arrivals
                .next_arrival(&mut rng)
                .expect("generated arrival processes never exhaust");
            let query = generator.next_query();
            last_arrival = now;
            let _ = acc.step(policy.as_mut(), &ctx, &query, now);
        }

        // Close out the horizon: the run ends at the last arrival.
        acc.finish(policy.as_mut(), &self.config.prices.rates, last_arrival)
    }
}

/// One-shot convenience: prepare and run.
#[must_use]
pub fn run_simulation(config: SimConfig) -> RunResult {
    Simulation::new(config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pricing::Money;

    fn quick(scheme: Scheme, interval: f64, n: u64) -> RunResult {
        let mut cfg = SimConfig::paper_cell(scheme, interval, 10.0, n);
        // Test-scale economics (see econ::economy tests): small capital,
        // low noise floor.
        cfg.econ.initial_credit = Money::from_dollars(0.02);
        cfg.econ.investment.min_regret = Money::from_dollars(1e-5);
        run_simulation(cfg)
    }

    #[test]
    fn all_four_schemes_complete() {
        for scheme in Scheme::paper_schemes() {
            let r = quick(scheme.clone(), 1.0, 300);
            assert_eq!(r.queries, 300);
            assert!(r.response.count() == 300);
            assert!(r.total_operating_cost().is_positive());
            assert!(r.mean_response_secs() > 0.0);
            assert!(r.horizon_secs >= 300.0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick(Scheme::EconCheap, 1.0, 400);
        let b = quick(Scheme::EconCheap, 1.0, 400);
        assert_eq!(a.total_operating_cost(), b.total_operating_cost());
        assert_eq!(a.mean_response_secs(), b.mean_response_secs());
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.investments, b.investments);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = SimConfig::paper_cell(Scheme::EconCheap, 1.0, 10.0, 400);
        cfg.econ.initial_credit = Money::from_dollars(0.02);
        let a = run_simulation(cfg.clone());
        let mut cfg2 = cfg.clone();
        cfg2.seed ^= 1;
        let b = run_simulation(cfg2);
        assert_ne!(a.mean_response_secs(), b.mean_response_secs());
    }

    #[test]
    fn economy_caches_within_test_horizon() {
        let r = quick(Scheme::EconCheap, 1.0, 2500);
        assert!(r.investments > 0, "no investments");
        assert!(r.cache_hits > 0, "no cache hits");
        assert!(r.final_disk_bytes > 0);
    }

    #[test]
    fn operating_cost_has_all_components() {
        let r = quick(Scheme::EconCheap, 1.0, 2500);
        assert!(r.operating.cpu.is_positive(), "node uptime");
        assert!(r.operating.network.is_positive(), "result shipping");
        assert!(r.operating.disk.is_positive(), "disk rent after builds");
        assert!(r.operating.io.is_positive(), "I/O charges");
    }

    #[test]
    fn bypass_never_profits() {
        let r = quick(
            Scheme::Bypass {
                cache_fraction: 0.3,
            },
            1.0,
            500,
        );
        assert_eq!(r.profit, Money::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid simulation config")]
    fn invalid_config_panics() {
        let mut cfg = SimConfig::paper_cell(Scheme::EconCol, 1.0, 1.0, 10);
        cfg.num_queries = 0;
        let _ = Simulation::new(cfg);
    }
}
