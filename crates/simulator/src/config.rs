//! Experiment-cell configuration.

use econ::EconConfig;
use planner::CostParams;
use pricing::PriceCatalog;
use serde::{Deserialize, Serialize};
use workload::WorkloadConfig;

/// Which caching scheme operates the cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Scheme {
    /// The net-only bypass-yield baseline, with its cache-size fraction
    /// (the paper's ideal is 0.30).
    Bypass {
        /// Cache capacity as a fraction of the database size.
        cache_fraction: f64,
    },
    /// Economic model, columns only.
    EconCol,
    /// Economic model, cheapest affordable plan.
    EconCheap,
    /// Economic model, fastest affordable plan.
    EconFast,
    /// Economic model, minimum-profit (Definition 1) objective.
    Altruistic,
}

impl Scheme {
    /// Display name used in figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Bypass { .. } => "bypass",
            Scheme::EconCol => "econ-col",
            Scheme::EconCheap => "econ-cheap",
            Scheme::EconFast => "econ-fast",
            Scheme::Altruistic => "econ-altruistic",
        }
    }

    /// The paper's four measured schemes.
    #[must_use]
    pub fn paper_schemes() -> Vec<Scheme> {
        vec![
            Scheme::Bypass {
                cache_fraction: 0.30,
            },
            Scheme::EconCol,
            Scheme::EconCheap,
            Scheme::EconFast,
        ]
    }
}

/// Query arrival process selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalKind {
    /// Deterministic gaps — the paper's inter-arrival grid.
    Fixed {
        /// Seconds between queries.
        interval_secs: f64,
    },
    /// Poisson arrivals with the given mean gap.
    Poisson {
        /// Mean seconds between queries.
        mean_gap_secs: f64,
    },
    /// Markov-modulated bursts.
    Bursty {
        /// Mean in-burst gap (seconds).
        on_gap_secs: f64,
        /// Mean queries per burst.
        burst_len: u64,
        /// Mean gap between bursts (seconds).
        off_gap_secs: f64,
    },
    /// Two-state Markov-modulated Poisson process
    /// ([`workload::MarkovModulated`]): calm/storm rate switching with
    /// exponential sojourns — the elasticity experiments' bursty shape.
    Mmpp {
        /// Mean inter-arrival gap in the calm state (seconds).
        calm_gap_secs: f64,
        /// Mean inter-arrival gap in the storm state (seconds).
        storm_gap_secs: f64,
        /// Mean calm-state duration (seconds).
        calm_sojourn_secs: f64,
        /// Mean storm-state duration (seconds).
        storm_sojourn_secs: f64,
    },
    /// Sinusoidally rate-modulated Poisson process
    /// ([`workload::DiurnalSinusoid`]): the day/night demand cycle.
    Diurnal {
        /// Mean inter-arrival gap averaged over a period (seconds).
        mean_gap_secs: f64,
        /// Relative rate swing in `[0, 1)`.
        amplitude: f64,
        /// Cycle length (seconds).
        period_secs: f64,
        /// Phase offset (radians); `-π/2` starts at the trough.
        phase: f64,
    },
}

/// Full description of one simulation cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// TPC-H scale factor (the paper's backend is SF ≈ 2500 = 2.5 TB).
    pub scale_factor: f64,
    /// Number of queries to serve.
    pub num_queries: u64,
    /// Arrival process.
    pub arrival: ArrivalKind,
    /// The scheme under test.
    pub scheme: Scheme,
    /// Workload knobs.
    pub workload: WorkloadConfig,
    /// Cost-model calibration.
    pub cost_params: CostParams,
    /// Resource prices.
    pub prices: PriceCatalog,
    /// Economy configuration (ignored by the bypass scheme).
    pub econ: EconConfig,
    /// Candidate-index budget (the paper's 65).
    pub candidate_indexes: usize,
    /// Master RNG seed — two runs with equal config and seed are
    /// bit-identical.
    pub seed: u64,
}

impl SimConfig {
    /// The paper's experimental cell for a scheme at an inter-arrival
    /// interval, scaled down to `sf` / `num_queries` (the full paper cell
    /// is `sf = 2500`, `num_queries = 1_000_000`).
    #[must_use]
    pub fn paper_cell(scheme: Scheme, interval_secs: f64, sf: f64, num_queries: u64) -> Self {
        SimConfig {
            scale_factor: sf,
            num_queries,
            arrival: ArrivalKind::Fixed { interval_secs },
            scheme,
            workload: WorkloadConfig::default(),
            cost_params: CostParams::default(),
            prices: PriceCatalog::ec2_2009(),
            econ: EconConfig::default(),
            candidate_indexes: 65,
            seed: 0xC10D_CA5E,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns a human-readable message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !self.scale_factor.is_finite() || self.scale_factor <= 0.0 {
            return Err("scale_factor must be positive".into());
        }
        if self.num_queries == 0 {
            return Err("num_queries must be positive".into());
        }
        match self.arrival {
            ArrivalKind::Fixed { interval_secs } if interval_secs <= 0.0 => {
                return Err("fixed interval must be positive".into());
            }
            ArrivalKind::Poisson { mean_gap_secs } if mean_gap_secs <= 0.0 => {
                return Err("poisson mean gap must be positive".into());
            }
            ArrivalKind::Bursty {
                on_gap_secs,
                burst_len,
                off_gap_secs,
            } if on_gap_secs <= 0.0 || off_gap_secs <= 0.0 || burst_len == 0 => {
                return Err("bursty parameters must be positive".into());
            }
            ArrivalKind::Mmpp {
                calm_gap_secs,
                storm_gap_secs,
                calm_sojourn_secs,
                storm_sojourn_secs,
            } if calm_gap_secs <= 0.0
                || storm_gap_secs <= 0.0
                || calm_sojourn_secs <= 0.0
                || storm_sojourn_secs <= 0.0 =>
            {
                return Err("mmpp parameters must be positive".into());
            }
            ArrivalKind::Diurnal {
                mean_gap_secs,
                amplitude,
                period_secs,
                phase,
            } if mean_gap_secs <= 0.0
                || period_secs <= 0.0
                || !(0.0..1.0).contains(&amplitude)
                || !phase.is_finite() =>
            {
                return Err("diurnal needs positive gaps/period and amplitude in [0, 1)".into());
            }
            _ => {}
        }
        if let Scheme::Bypass { cache_fraction } = self.scheme {
            if !(cache_fraction > 0.0 && cache_fraction <= 1.0) {
                return Err("bypass cache_fraction must be in (0, 1]".into());
            }
        }
        self.workload
            .validate()
            .map_err(|(f, r)| format!("workload.{f}: {r}"))?;
        self.cost_params
            .validate()
            .map_err(|f| format!("cost_params.{f} invalid"))?;
        self.econ.validate().map_err(|m| format!("econ: {m}"))?;
        if self.candidate_indexes == 0 {
            return Err("candidate_indexes must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cell_validates() {
        for scheme in Scheme::paper_schemes() {
            let cfg = SimConfig::paper_cell(scheme, 10.0, 10.0, 1000);
            assert!(cfg.validate().is_ok());
        }
    }

    #[test]
    fn scheme_names() {
        assert_eq!(
            Scheme::paper_schemes()
                .iter()
                .map(Scheme::name)
                .collect::<Vec<_>>(),
            vec!["bypass", "econ-col", "econ-cheap", "econ-fast"]
        );
    }

    #[test]
    fn invalid_fields_rejected() {
        let mut cfg = SimConfig::paper_cell(Scheme::EconCheap, 10.0, 10.0, 1000);
        cfg.num_queries = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::paper_cell(Scheme::EconCheap, 10.0, 10.0, 1000);
        cfg.arrival = ArrivalKind::Fixed { interval_secs: 0.0 };
        assert!(cfg.validate().is_err());

        let cfg = SimConfig::paper_cell(
            Scheme::Bypass {
                cache_fraction: 1.5,
            },
            10.0,
            10.0,
            1000,
        );
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::paper_cell(Scheme::EconCheap, 10.0, 10.0, 1000);
        cfg.scale_factor = -1.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn config_roundtrips_serde() {
        let cfg = SimConfig::paper_cell(Scheme::EconFast, 30.0, 100.0, 5000);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_queries, 5000);
        assert_eq!(back.scheme.name(), "econ-fast");
    }
}
