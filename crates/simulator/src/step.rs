//! The reusable per-query accounting step.
//!
//! [`RunAccumulator`] is the bookkeeping half of the coordinator loop,
//! factored out of [`crate::Simulation::run`] so that other drivers — the
//! fleet executor routes one merged multi-tenant stream over *several*
//! policies — can step queries through a policy one at a time and still
//! book exactly the costs the paper's model charges:
//!
//! * backend executions are pay-per-use (CPU + I/O + network, eq. 9);
//! * cache executions pay I/O per use, while cache CPU is covered by node
//!   *uptime* (base node plus extra nodes at `c` per second — eq. 11);
//!   booking both would double-count;
//! * cache disk is charged on the exact byte-seconds integral (eq. 13/15)
//!   at [`RunAccumulator::finish`];
//! * structure builds are charged when the investment happens.

use metrics::{CostBreakdown, LogHistogram, Resource, StreamingStats, TimeSeries};
use planner::PlannerContext;
use policies::{CachePolicy, PolicyOutcome};
use pricing::{Money, ResourceRates};
use simcore::SimTime;
use workload::Query;

use crate::results::RunResult;

/// Streaming accumulator for one policy's measurements over a run.
///
/// Use [`step`](RunAccumulator::step) per arrival (or, when several
/// policies share one clock, [`accrue_uptime`](RunAccumulator::accrue_uptime)
/// on every policy followed by [`record`](RunAccumulator::record) on the
/// one that served the query), then [`finish`](RunAccumulator::finish)
/// once to close the integrals over the run horizon.
#[derive(Debug)]
pub struct RunAccumulator {
    response: StreamingStats,
    response_hist: LogHistogram,
    response_series: TimeSeries,
    operating: CostBreakdown,
    build_spend: Money,
    payments: Money,
    profit: Money,
    cache_hits: u64,
    investments: u64,
    evictions: u64,
    queries: u64,
    started_at: SimTime,
    prev_time: SimTime,
    node_seconds: f64,
}

impl Default for RunAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl RunAccumulator {
    /// Empty accumulator with the clock at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::new_at(SimTime::ZERO)
    }

    /// Empty accumulator for a policy that comes up at `start` — an
    /// elastically spawned fleet node. Base-node uptime (eq. 11) is
    /// charged from `start` instead of the run origin, and the uptime
    /// integral's clock begins there.
    #[must_use]
    pub fn new_at(start: SimTime) -> Self {
        RunAccumulator {
            response: StreamingStats::new(),
            response_hist: LogHistogram::latency(),
            response_series: TimeSeries::new(512),
            operating: CostBreakdown::ZERO,
            build_spend: Money::ZERO,
            payments: Money::ZERO,
            profit: Money::ZERO,
            cache_hits: 0,
            investments: 0,
            evictions: 0,
            queries: 0,
            started_at: start,
            prev_time: start,
            node_seconds: 0.0,
        }
    }

    /// Queries recorded so far.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// User payments collected so far.
    #[must_use]
    pub fn payments(&self) -> Money {
        self.payments
    }

    /// Cloud profit collected so far.
    #[must_use]
    pub fn profit(&self) -> Money {
        self.profit
    }

    /// Sum of delivered response times so far (seconds) — windowed
    /// latency signals are deltas of this against [`Self::queries`].
    #[must_use]
    pub fn response_secs_total(&self) -> f64 {
        self.response.mean() * self.response.count() as f64
    }

    /// Books a build that happened outside a query outcome — a fleet
    /// control plane booting a node charges eq. 10's boot cost here, so
    /// it flows into `build_spend` (and the investment count) exactly
    /// like a structure built by the economy.
    pub fn book_build(&mut self, cost: Money) {
        self.build_spend += cost;
        self.investments += 1;
    }

    /// Accrues the policy's extra-node uptime from the previous arrival to
    /// `now`. Nodes change state only at arrival instants, so this
    /// sampling is exact except for boots mid-gap, which err by < one gap.
    ///
    /// Must be called once per arrival instant for every policy sharing
    /// the clock — including policies that do not serve the query.
    pub fn accrue_uptime(&mut self, policy: &dyn CachePolicy, now: SimTime) {
        self.node_seconds +=
            f64::from(policy.active_extra_nodes(self.prev_time)) * (now - self.prev_time).as_secs();
        self.prev_time = now;
    }

    /// Books one served query's outcome.
    pub fn record(&mut self, outcome: &PolicyOutcome, now: SimTime) {
        self.queries += 1;
        let secs = outcome.response_time.as_secs();
        self.response.record(secs);
        self.response_hist.record(secs);
        self.response_series.record(now.as_secs(), secs);

        if outcome.ran_in_cache {
            // Cache CPU is covered by node uptime; book I/O per use.
            self.operating
                .add_to(Resource::Io, outcome.exec_breakdown.io);
            self.operating
                .add_to(Resource::Network, outcome.exec_breakdown.network);
            self.cache_hits += 1;
        } else {
            self.operating += outcome.exec_breakdown;
        }
        self.build_spend += outcome.build_spend;
        self.payments += outcome.payment;
        self.profit += outcome.profit;
        self.investments += u64::from(outcome.investments);
        self.evictions += u64::from(outcome.evictions);
    }

    /// Serves one query end to end: accrues uptime, runs the policy,
    /// books the outcome.
    pub fn step(
        &mut self,
        policy: &mut dyn CachePolicy,
        ctx: &PlannerContext<'_>,
        query: &Query,
        now: SimTime,
    ) -> PolicyOutcome {
        self.accrue_uptime(policy, now);
        let outcome = policy.process_query(ctx, query, now);
        self.record(&outcome, now);
        outcome
    }

    /// Closes the run at `horizon`: advances the policy, charges disk rent
    /// over the exact occupancy integral and node uptime (the always-on
    /// base node plus accrued extra nodes), and produces the result.
    #[must_use]
    pub fn finish(
        mut self,
        policy: &mut dyn CachePolicy,
        rates: &ResourceRates,
        horizon: SimTime,
    ) -> RunResult {
        self.accrue_uptime(policy, horizon);
        policy.advance(horizon);

        self.operating.add_to(
            Resource::Disk,
            Money::from_dollars(policy.disk_byte_seconds() * rates.disk_byte_per_sec),
        );
        let base_node_secs = horizon.saturating_since(self.started_at).as_secs();
        self.operating.add_to(
            Resource::Cpu,
            rates.cpu_cost(base_node_secs + self.node_seconds),
        );

        RunResult {
            scheme: policy.name().to_owned(),
            queries: self.queries,
            horizon_secs: horizon.as_secs(),
            response: self.response,
            response_hist: self.response_hist,
            operating: self.operating,
            build_spend: self.build_spend,
            payments: self.payments,
            profit: self.profit,
            cache_hits: self.cache_hits,
            investments: self.investments,
            evictions: self.evictions,
            response_series: self.response_series,
            final_disk_bytes: policy.disk_used(),
        }
    }
}
