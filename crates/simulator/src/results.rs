//! Run results — the measurements Figures 4 and 5 plot.

use metrics::{CostBreakdown, LogHistogram, StreamingStats, TimeSeries};
use pricing::Money;
use serde::{Deserialize, Serialize};

/// Everything measured over one simulation cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Scheme name (`bypass`, `econ-col`, …).
    pub scheme: String,
    /// Queries served.
    pub queries: u64,
    /// Simulated wall-clock covered by the run (seconds).
    pub horizon_secs: f64,
    /// Response-time statistics (seconds) — Fig. 5 plots the mean.
    pub response: StreamingStats,
    /// Response-time histogram for percentile reporting.
    pub response_hist: LogHistogram,
    /// Per-resource execution + infrastructure cost (CPU uptime, disk
    /// rent, network transfers, I/O ops).
    pub operating: CostBreakdown,
    /// Money spent building structures (column transfers, index sorts,
    /// node boots).
    pub build_spend: Money,
    /// User payments collected.
    pub payments: Money,
    /// Cloud profit collected (zero for bypass).
    pub profit: Money,
    /// Queries answered in the cache.
    pub cache_hits: u64,
    /// Structures built.
    pub investments: u64,
    /// Structures evicted / failed.
    pub evictions: u64,
    /// Mean response time over the run, sampled as a series for plots.
    pub response_series: TimeSeries,
    /// Cache disk occupied at the end of the run (bytes).
    pub final_disk_bytes: u64,
}

impl RunResult {
    /// Fig. 4's y-value: total operating cost of the caching
    /// infrastructure (execution resources + disk rent + node uptime +
    /// structure builds).
    #[must_use]
    pub fn total_operating_cost(&self) -> Money {
        self.operating.total() + self.build_spend
    }

    /// Fig. 5's y-value: mean response time in seconds.
    #[must_use]
    pub fn mean_response_secs(&self) -> f64 {
        self.response.mean()
    }

    /// Cache hit rate in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// One-line table row used by the figure harnesses.
    #[must_use]
    pub fn table_row(&self) -> String {
        format!(
            "{:<12} cost ${:>10.4}  mean resp {:>8.3}s  p50 {:>7.3}s  p99 {:>8.3}s  hits {:>5.1}%  builds {:>4}  evicts {:>4}",
            self.scheme,
            self.total_operating_cost().as_dollars(),
            self.mean_response_secs(),
            self.response_hist.quantile(0.5).unwrap_or(0.0),
            self.response_hist.quantile(0.99).unwrap_or(0.0),
            self.hit_rate() * 100.0,
            self.investments,
            self.evictions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RunResult {
        let mut response = StreamingStats::new();
        response.record(1.0);
        response.record(3.0);
        let mut hist = LogHistogram::latency();
        hist.record(1.0);
        hist.record(3.0);
        let mut operating = CostBreakdown::ZERO;
        operating.add_to(metrics::Resource::Cpu, Money::from_dollars(2.0));
        RunResult {
            scheme: "econ-cheap".into(),
            queries: 2,
            horizon_secs: 20.0,
            response,
            response_hist: hist,
            operating,
            build_spend: Money::from_dollars(1.0),
            payments: Money::from_dollars(5.0),
            profit: Money::from_dollars(0.5),
            cache_hits: 1,
            investments: 3,
            evictions: 0,
            response_series: TimeSeries::new(16),
            final_disk_bytes: 42,
        }
    }

    #[test]
    fn totals_combine_operating_and_builds() {
        let r = result();
        assert_eq!(r.total_operating_cost(), Money::from_dollars(3.0));
        assert_eq!(r.mean_response_secs(), 2.0);
        assert_eq!(r.hit_rate(), 0.5);
    }

    #[test]
    fn table_row_mentions_scheme_and_cost() {
        let row = result().table_row();
        assert!(row.contains("econ-cheap"));
        assert!(row.contains("3.0000"));
    }

    #[test]
    fn result_roundtrips_serde() {
        let r = result();
        let json = serde_json::to_string(&r).unwrap();
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.queries, 2);
        assert_eq!(back.total_operating_cost(), r.total_operating_cost());
    }
}
