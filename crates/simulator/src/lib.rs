//! # simulator — the cloud-cache simulator (Fig. 3's architecture)
//!
//! Wires the workload generator, the planner, the economy/policies and
//! the metrics into one deterministic run:
//!
//! ```text
//!  user ──query+budget──▶ Coordinator ──▶ CachePolicy (bypass | econ-*)
//!                             │                  │
//!                             ▼                  ▼
//!                        back-end DB        CPU nodes + shared FS
//! ```
//!
//! [`SimConfig`] describes an experiment cell (scheme × inter-arrival ×
//! workload × prices); [`run_simulation`] executes it and returns a
//! [`RunResult`] with exactly the measurements Figures 4 and 5 plot:
//! total operating cost and mean response time, plus the per-resource
//! decomposition Section VII-B reasons with.
//!
//! Runs are pure functions of `(SimConfig, seed)`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod results;
pub mod run;
pub mod step;

pub use config::{ArrivalKind, Scheme, SimConfig};
pub use results::RunResult;
pub use run::{make_arrivals, make_policy, run_simulation, Simulation};
pub use step::RunAccumulator;
