//! # policies — the four caching schemes of Section VII-A
//!
//! The paper's evaluation compares:
//!
//! * **bypass / net-only** ([`bypass::BypassYieldPolicy`]) — an emulation
//!   of bypass-yield caching (Malik et al., ICDE 2005): decisions consider
//!   *only network bandwidth* ("setting costs for CPU, disk and I/O to
//!   zero"), only table columns are cached, the cache is capped at 30 % of
//!   the database ("the ideal cache size for net-only"), and no indexes or
//!   extra nodes are used.
//! * **econ-col** ([`econ_policy::EconPolicy::econ_col`]) — the economic
//!   model restricted to cached columns (no indexes, no extra nodes).
//! * **econ-cheap** ([`econ_policy::EconPolicy::econ_cheap`]) — full
//!   economy, picks the cheapest affordable plan.
//! * **econ-fast** ([`econ_policy::EconPolicy::econ_fast`]) — full
//!   economy, picks the fastest affordable plan.
//!
//! All four implement [`policy::CachePolicy`], which the simulator drives;
//! *decisions* may ignore resources (bypass), but the simulator books the
//! *actual* resource consumption of whatever ran — that distinction is
//! exactly what Fig. 4 measures.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bypass;
pub mod econ_policy;
pub mod policy;

pub use bypass::BypassYieldPolicy;
pub use econ_policy::EconPolicy;
pub use policy::{CachePolicy, PolicyOutcome};
