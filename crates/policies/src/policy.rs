//! The policy interface the simulator drives.

use metrics::CostBreakdown;
use planner::{LazySkeleton, PlannerContext};
use pricing::Money;
use simcore::{SimDuration, SimTime};
use workload::Query;

/// What one query did, as far as the simulator's accounting cares.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyOutcome {
    /// Wall-clock response time delivered to the user.
    pub response_time: SimDuration,
    /// True if the query ran in the cache (vs the back-end).
    pub ran_in_cache: bool,
    /// Resource cost of the execution itself (CPU / I/O / network),
    /// booked by the simulator into the operating cost.
    pub exec_breakdown: CostBreakdown,
    /// Money spent right now building structures (column transfers, index
    /// sorts, node boots) — the investment side of the operating cost.
    pub build_spend: Money,
    /// What the user paid (cost recovery for bypass; `B_Q(t)` for the
    /// economic schemes).
    pub payment: Money,
    /// Cloud profit on this query (zero for bypass).
    pub profit: Money,
    /// Structures built following this query.
    pub investments: u32,
    /// Structures evicted before this query.
    pub evictions: u32,
    /// Cached structures the winning plan actually used (empty for
    /// backend runs and for bypass, which prices executions rather than
    /// structures) — the attribution trail "which tenants paid for
    /// structure S" settles through.
    pub used_structures: Vec<cache::StructureKey>,
}

/// A caching scheme the simulator can operate.
pub trait CachePolicy {
    /// Scheme name as it appears in the figures (`bypass`, `econ-col`, …).
    fn name(&self) -> &'static str;

    /// Serves one query arriving at `now`.
    fn process_query(
        &mut self,
        ctx: &PlannerContext<'_>,
        query: &Query,
        now: SimTime,
    ) -> PolicyOutcome;

    /// Quotes the price this cloud would charge for `query` at `now`,
    /// without serving it or mutating any state.
    ///
    /// For the economic schemes this is the paper's `B_Q(t)` settlement of
    /// the case analysis; for bypass it is the cost-recovery charge of the
    /// execution the cache would run. Fleet routers compare quotes across
    /// competing clouds (cheapest-bid routing); a quote is a bid, not a
    /// contract — the realized charge can differ if serving the query
    /// first triggers evictions or investments.
    fn quote(&self, ctx: &PlannerContext<'_>, query: &Query, now: SimTime) -> Money;

    /// [`Self::quote`] given the quote round's shared, lazily-built
    /// plan skeleton for `query` — fleet rounds create one
    /// [`LazySkeleton`] and pass it to every bidding node, so the
    /// cache-independent half of planning is computed at most once per
    /// round (and not at all when every node's plan cache hits).
    ///
    /// Must return exactly what [`Self::quote`] would (the skeleton is a
    /// pure function of `(ctx, query)`); the default implementation
    /// ignores the skeleton and delegates, which is always correct.
    /// Policies whose planning factors through the skeleton (the economic
    /// schemes) override this to skip the redundant enumeration.
    fn quote_with_skeleton(
        &self,
        ctx: &PlannerContext<'_>,
        query: &Query,
        skeleton: &LazySkeleton<'_>,
        now: SimTime,
    ) -> Money {
        let _ = skeleton;
        self.quote(ctx, query, now)
    }

    /// The economy manager backing this policy's quotes, when its
    /// planning factors through batched structure-major completion
    /// (`econ::QuoteBatch`). A fleet quote round batches the per-node
    /// completion sweeps of every node that returns `Some`; nodes
    /// returning `None` (the default) are quoted individually through
    /// [`Self::quote_with_skeleton`]. Either path must produce identical
    /// bids.
    fn economy(&self) -> Option<&econ::EconomyManager> {
        None
    }

    /// Mutable access to the same economy manager [`Self::economy`]
    /// exposes — the capital-preserving evacuation path settles structure
    /// transfers (release on the victim, priced receive on the survivor)
    /// directly against the manager. `None` exactly when
    /// [`Self::economy`] is `None`.
    fn economy_mut(&mut self) -> Option<&mut econ::EconomyManager> {
        None
    }

    /// Cache disk currently occupied (bytes).
    fn disk_used(&self) -> u64;

    /// Cumulative disk byte-seconds integral (the simulator charges
    /// `c_d ×` the delta each step — eq. 13/15 as operating cost).
    fn disk_byte_seconds(&self) -> f64;

    /// Extra CPU nodes currently up (beyond the base node), whose uptime
    /// the simulator charges at `c` per second (eq. 11).
    fn active_extra_nodes(&self, now: SimTime) -> u32;

    /// Accrues time-based state to `now` (called once more at the end of
    /// a run so integrals cover the full horizon).
    fn advance(&mut self, now: SimTime);

    /// Re-bases the disk-occupancy integral at `now` after a
    /// crash-recovery replay: the replayed span's rent was settled when
    /// the crashed node's books closed, so the recovered policy must only
    /// accrue byte-seconds from `now` forward. The default merely
    /// advances (correct for policies that cache nothing); policies with
    /// a resettable occupancy integral (the economic schemes) override it
    /// to write the replayed integral off.
    fn rebase_occupancy(&mut self, now: SimTime) {
        self.advance(now);
    }
}
