//! The net-only baseline: bypass-yield caching.
//!
//! Section VII-A: *"The proposed economic model is compared with
//! bypass-yield cache. The latter is emulated by associating cost only
//! with network bandwidth, therefore setting costs for CPU, disk and I/O
//! to zero. This cache, denoted as net-only, tries to reduce the network
//! bandwidth and caches only table columns. The experiments employ the
//! ideal cache size for net-only, which is 30 % of the total database
//! size. The net-only cache avoids using indexes."*
//!
//! Mechanism (after Malik, Burns & Chaudhary, ICDE 2005): every query
//! answered at the back-end ships its result over the WAN; each column
//! the query *would have needed* in the cache accrues that shipped volume
//! as **yield credit**. Once a column's credit exceeds its own size,
//! loading it is cheaper (in network bytes) than continuing to bypass, so
//! the column is fetched — subject to the 30 % capacity cap, evicting the
//! lowest credit-per-byte columns when full.
//!
//! Decisions use network bytes only; the *simulator* still books the real
//! CPU/disk/I/O the executions consume — that asymmetry is precisely the
//! comparison Fig. 4 draws.

use std::collections::HashMap;

use cache::Occupancy;
use catalog::ColumnId;
use planner::PlannerContext;
use pricing::Money;
use simcore::{SimDuration, SimTime};
use workload::Query;

use crate::policy::{CachePolicy, PolicyOutcome};

/// State of one cached column.
#[derive(Debug, Clone)]
struct CachedColumn {
    size: u64,
    available_at: SimTime,
    credit: f64,
}

/// The bypass-yield (net-only) baseline policy.
#[derive(Debug)]
pub struct BypassYieldPolicy {
    capacity: u64,
    cached: HashMap<ColumnId, CachedColumn>,
    credit: HashMap<ColumnId, f64>,
    occupancy: Occupancy,
    evictions_pending: u32,
}

impl BypassYieldPolicy {
    /// Creates a bypass cache capped at `cache_fraction` of the database
    /// (the paper uses 0.30).
    ///
    /// # Panics
    /// Panics unless `0 < cache_fraction <= 1`.
    #[must_use]
    pub fn new(schema: &catalog::Schema, cache_fraction: f64) -> Self {
        assert!(
            cache_fraction > 0.0 && cache_fraction <= 1.0,
            "cache fraction {cache_fraction} out of (0, 1]"
        );
        let capacity = (schema.total_bytes() as f64 * cache_fraction) as u64;
        BypassYieldPolicy {
            capacity,
            cached: HashMap::new(),
            credit: HashMap::new(),
            occupancy: Occupancy::new(),
            evictions_pending: 0,
        }
    }

    /// The paper's configuration: 30 % of the database.
    #[must_use]
    pub fn paper(schema: &catalog::Schema) -> Self {
        Self::new(schema, 0.30)
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of columns currently cached (including in-flight loads).
    #[must_use]
    pub fn cached_columns(&self) -> usize {
        self.cached.len()
    }

    fn all_available(&self, query: &Query, now: SimTime) -> bool {
        query.all_columns().all(|c| {
            self.cached
                .get(&c)
                .is_some_and(|col| col.available_at <= now)
        })
    }

    /// Considers loading `column`; returns bytes transferred if loaded.
    fn maybe_load(&mut self, ctx: &PlannerContext<'_>, column: ColumnId, now: SimTime) -> u64 {
        if self.cached.contains_key(&column) {
            return 0;
        }
        let size = ctx.schema.column_bytes(column);
        let credit = self.credit.get(&column).copied().unwrap_or(0.0);
        if credit < size as f64 || size > self.capacity {
            return 0;
        }
        // Evict lowest credit-per-byte columns until the newcomer fits —
        // but never evict anything *denser* than the newcomer.
        let new_density = credit / size as f64;
        while self.occupancy.bytes() + size > self.capacity {
            let victim = self
                .cached
                .iter()
                .map(|(&c, col)| (c, col.credit / col.size as f64))
                .filter(|&(_, density)| density <= new_density)
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .map(|(c, _)| c);
            match victim {
                Some(c) => {
                    let col = self.cached.remove(&c).expect("present");
                    self.occupancy.remove(now, col.size);
                    self.evictions_pending += 1;
                    // The evicted column keeps half its credit: it was
                    // useful recently and may earn its way back.
                    self.credit.insert(c, col.credit * 0.5);
                }
                None => return 0, // newcomer is the least dense — bypass
            }
        }
        let transfer = ctx.estimator.network().transfer_time(size);
        self.occupancy.add(now, size);
        self.cached.insert(
            column,
            CachedColumn {
                size,
                available_at: now + transfer,
                credit,
            },
        );
        self.credit.remove(&column);
        size
    }
}

impl CachePolicy for BypassYieldPolicy {
    fn name(&self) -> &'static str {
        "bypass"
    }

    fn process_query(
        &mut self,
        ctx: &PlannerContext<'_>,
        query: &Query,
        now: SimTime,
    ) -> PolicyOutcome {
        self.occupancy.advance(now);
        let evictions = std::mem::take(&mut self.evictions_pending);

        if self.all_available(query, now) {
            // Answer in the cache: single node, column scans only.
            let est = ctx.estimator.cache_execution(
                ctx.schema,
                query,
                &vec![None; query.accesses.len()],
                1,
            );
            for c in query.all_columns() {
                if let Some(col) = self.cached.get_mut(&c) {
                    col.credit += query.result_bytes as f64 / query.column_count() as f64;
                }
            }
            let (exec_cost, exec_breakdown) = ctx.estimator.price_execution(&est);
            return PolicyOutcome {
                response_time: est.time,
                ran_in_cache: true,
                exec_breakdown,
                build_spend: Money::ZERO,
                payment: exec_cost,
                profit: Money::ZERO,
                investments: 0,
                evictions,
                used_structures: Vec::new(),
            };
        }

        // Bypass: answer at the back-end, ship the result. Each needed
        // column accrues the shipped bytes as yield credit.
        let est = ctx.estimator.backend_execution(ctx.schema, query);
        let share = query.result_bytes as f64 / query.column_count().max(1) as f64;
        let columns: Vec<ColumnId> = query.all_columns().collect();
        for &c in &columns {
            if !self.cached.contains_key(&c) {
                *self.credit.entry(c).or_insert(0.0) += share;
            }
        }
        // Load any column whose credit now covers its size.
        let mut build_bytes = 0u64;
        let mut investments = 0u32;
        for &c in &columns {
            let loaded = self.maybe_load(ctx, c, now);
            if loaded > 0 {
                build_bytes += loaded;
                investments += 1;
            }
        }
        let (exec_cost, exec_breakdown) = ctx.estimator.price_execution(&est);
        // Column loads are network transfers the cloud pays for now.
        let build_spend = ctx.estimator.prices().rates.transfer_cost(build_bytes);
        let evictions_total = evictions + std::mem::take(&mut self.evictions_pending);
        PolicyOutcome {
            response_time: est.time,
            ran_in_cache: false,
            exec_breakdown,
            build_spend,
            payment: exec_cost,
            profit: Money::ZERO,
            investments,
            evictions: evictions_total,
            used_structures: Vec::new(),
        }
    }

    fn quote(&self, ctx: &PlannerContext<'_>, query: &Query, now: SimTime) -> Money {
        // Bypass recovers exactly the execution cost: the cache run if
        // every needed column is resident, the backend run otherwise.
        let est = if self.all_available(query, now) {
            ctx.estimator
                .cache_execution(ctx.schema, query, &vec![None; query.accesses.len()], 1)
        } else {
            ctx.estimator.backend_execution(ctx.schema, query)
        };
        ctx.estimator.price_execution(&est).0
    }

    fn disk_used(&self) -> u64 {
        self.occupancy.bytes()
    }

    fn disk_byte_seconds(&self) -> f64 {
        self.occupancy.byte_seconds()
    }

    fn active_extra_nodes(&self, _now: SimTime) -> u32 {
        0 // bypass never boots extra nodes
    }

    fn advance(&mut self, now: SimTime) {
        self.occupancy.advance(now);
    }
}

/// Convenience: response time the bypass cache would deliver for a fully
/// cached query (used by tests).
#[must_use]
pub fn cached_response(ctx: &PlannerContext<'_>, query: &Query) -> SimDuration {
    ctx.estimator
        .cache_execution(ctx.schema, query, &vec![None; query.accesses.len()], 1)
        .time
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::tpch::{tpch_schema, ScaleFactor};
    use planner::{generate_candidates, CostParams, Estimator};
    use pricing::PriceCatalog;
    use simcore::NetworkModel;
    use std::sync::Arc;
    use workload::{paper_templates, WorkloadConfig, WorkloadGenerator};

    struct Fx {
        schema: Arc<catalog::Schema>,
        candidates: Vec<cache::IndexDef>,
        cand_index: planner::CandidateIndex,
        estimator: Estimator,
    }

    impl Fx {
        fn new() -> Self {
            let schema = Arc::new(tpch_schema(ScaleFactor(1.0)));
            let templates = paper_templates(&schema);
            let candidates = generate_candidates(&schema, &templates, 65);
            let cand_index = planner::CandidateIndex::build(&schema, &candidates);
            let estimator = Estimator::new(
                CostParams::default(),
                PriceCatalog::network_only(),
                NetworkModel::paper_sdss(),
            );
            Fx {
                schema,
                candidates,
                cand_index,
                estimator,
            }
        }
        fn ctx(&self) -> PlannerContext<'_> {
            PlannerContext {
                schema: &self.schema,
                candidates: &self.candidates,
                cand_index: &self.cand_index,
                estimator: &self.estimator,
            }
        }
    }

    #[test]
    fn capacity_is_30_percent_of_db() {
        let fx = Fx::new();
        let p = BypassYieldPolicy::paper(&fx.schema);
        let expected = (fx.schema.total_bytes() as f64 * 0.30) as u64;
        assert_eq!(p.capacity(), expected);
    }

    #[test]
    fn cold_cache_bypasses_to_backend() {
        let fx = Fx::new();
        let mut p = BypassYieldPolicy::paper(&fx.schema);
        let mut gen = WorkloadGenerator::new(Arc::clone(&fx.schema), WorkloadConfig::default(), 1);
        let q = gen.next_query();
        let o = p.process_query(&fx.ctx(), &q, SimTime::from_secs(1.0));
        assert!(!o.ran_in_cache);
        assert!(o.exec_breakdown.network.is_positive(), "result shipped");
    }

    #[test]
    fn repeated_queries_eventually_load_columns() {
        let fx = Fx::new();
        let mut p = BypassYieldPolicy::paper(&fx.schema);
        let ctx = fx.ctx();
        let mut gen = WorkloadGenerator::new(Arc::clone(&fx.schema), WorkloadConfig::default(), 2);
        let mut loaded = 0u32;
        for i in 0..5000 {
            let q = gen.next_query();
            let o = p.process_query(&ctx, &q, SimTime::from_secs((i + 1) as f64));
            loaded += o.investments;
        }
        assert!(loaded > 0, "yield credits must eventually load columns");
        assert!(p.disk_used() > 0);
        assert!(p.disk_used() <= p.capacity(), "cap respected");
    }

    #[test]
    fn cache_hits_after_warmup() {
        let fx = Fx::new();
        let mut p = BypassYieldPolicy::paper(&fx.schema);
        let ctx = fx.ctx();
        let mut gen = WorkloadGenerator::new(Arc::clone(&fx.schema), WorkloadConfig::default(), 3);
        let mut hits_late = 0;
        for i in 0..8000 {
            let q = gen.next_query();
            let o = p.process_query(&ctx, &q, SimTime::from_secs((i + 1) as f64));
            if i >= 6000 && o.ran_in_cache {
                hits_late += 1;
            }
        }
        assert!(hits_late > 0, "warm bypass cache must serve hits");
    }

    #[test]
    fn in_flight_loads_are_not_usable() {
        let fx = Fx::new();
        let mut p = BypassYieldPolicy::new(&fx.schema, 1.0);
        let ctx = fx.ctx();
        // Force-load a column by seeding massive credit, then check the
        // very next query at the same instant still bypasses.
        let mut gen = WorkloadGenerator::new(Arc::clone(&fx.schema), WorkloadConfig::default(), 4);
        let q = gen.next_query();
        for c in q.all_columns() {
            p.credit.insert(c, f64::MAX / 4.0);
        }
        let o = p.process_query(&ctx, &q, SimTime::from_secs(1.0));
        assert!(!o.ran_in_cache);
        assert!(o.investments > 0, "loads kicked off");
        let o2 = p.process_query(&ctx, &q, SimTime::from_secs(1.0));
        assert!(!o2.ran_in_cache, "transfer still in flight");
        // After the transfer window the cache serves it.
        let o3 = p.process_query(&ctx, &q, SimTime::from_secs(1e7));
        assert!(o3.ran_in_cache);
    }

    #[test]
    fn eviction_respects_density_order() {
        let fx = Fx::new();
        // Tiny cache: only one small column fits at a time.
        let mut p = BypassYieldPolicy::new(&fx.schema, 0.001);
        assert_eq!(p.cached_columns(), 0);
        assert!(p.capacity() > 0);
        // The policy must never exceed its cap no matter the workload.
        let ctx = fx.ctx();
        let mut gen = WorkloadGenerator::new(Arc::clone(&fx.schema), WorkloadConfig::default(), 5);
        for i in 0..3000 {
            let q = gen.next_query();
            let _ = p.process_query(&ctx, &q, SimTime::from_secs((i + 1) as f64));
            assert!(p.disk_used() <= p.capacity());
        }
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn zero_fraction_rejected() {
        let fx = Fx::new();
        let _ = BypassYieldPolicy::new(&fx.schema, 0.0);
    }
}
