//! The three economic schemes, as thin configurations of the economy.

use econ::{EconConfig, EconomyManager, SelectionObjective};
use planner::{LazySkeleton, PlannerContext};
use pricing::Money;
use simcore::SimTime;
use workload::Query;

use crate::policy::{CachePolicy, PolicyOutcome};

/// An economic caching scheme: the [`EconomyManager`] plus a display name.
#[derive(Debug)]
pub struct EconPolicy {
    name: &'static str,
    manager: EconomyManager,
}

impl EconPolicy {
    /// econ-col: "query plan execution employs only cached columns and no
    /// indexes" (and no extra nodes) — Section VII-A.
    #[must_use]
    pub fn econ_col(base: EconConfig) -> Self {
        EconPolicy {
            name: "econ-col",
            manager: EconomyManager::new(EconConfig {
                objective: SelectionObjective::Cheapest,
                allow_indexes: false,
                allow_extra_nodes: false,
                ..base
            }),
        }
    }

    /// econ-cheap: "builds and uses indexes, and adds extra CPU nodes …
    /// the plan with the least cost is chosen".
    #[must_use]
    pub fn econ_cheap(base: EconConfig) -> Self {
        EconPolicy {
            name: "econ-cheap",
            manager: EconomyManager::new(EconConfig {
                objective: SelectionObjective::Cheapest,
                allow_indexes: true,
                allow_extra_nodes: true,
                ..base
            }),
        }
    }

    /// econ-fast: "similar to econ-cheap, but selects the query plan with
    /// the fastest response time".
    #[must_use]
    pub fn econ_fast(base: EconConfig) -> Self {
        EconPolicy {
            name: "econ-fast",
            manager: EconomyManager::new(EconConfig {
                objective: SelectionObjective::Fastest,
                allow_indexes: true,
                allow_extra_nodes: true,
                ..base
            }),
        }
    }

    /// The altruistic default of Section IV-C (min-profit objective) —
    /// not one of the paper's measured schemes, but the Definition 1 cloud.
    #[must_use]
    pub fn altruistic(base: EconConfig) -> Self {
        EconPolicy {
            name: "econ-altruistic",
            manager: EconomyManager::new(EconConfig {
                objective: SelectionObjective::MinProfit,
                allow_indexes: true,
                allow_extra_nodes: true,
                ..base
            }),
        }
    }

    /// The underlying economy (diagnostics).
    #[must_use]
    pub fn manager(&self) -> &EconomyManager {
        &self.manager
    }
}

impl CachePolicy for EconPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn process_query(
        &mut self,
        ctx: &PlannerContext<'_>,
        query: &Query,
        now: SimTime,
    ) -> PolicyOutcome {
        let o = self.manager.process_query(ctx, query, now);
        let build_spend: Money = o.investments.iter().map(|&(_, cost)| cost).sum();
        PolicyOutcome {
            response_time: o.response_time,
            ran_in_cache: o.ran_in_cache,
            exec_breakdown: o.exec_breakdown,
            build_spend,
            payment: o.payment,
            profit: o.profit,
            investments: o.investments.len() as u32,
            evictions: o.evictions.len() as u32,
            used_structures: o.used_structures,
        }
    }

    fn quote(&self, ctx: &PlannerContext<'_>, query: &Query, now: SimTime) -> Money {
        self.manager.quote_query(ctx, query, now)
    }

    fn quote_with_skeleton(
        &self,
        ctx: &PlannerContext<'_>,
        query: &Query,
        skeleton: &LazySkeleton<'_>,
        now: SimTime,
    ) -> Money {
        self.manager.quote_with_skeleton(ctx, query, skeleton, now)
    }

    fn economy(&self) -> Option<&EconomyManager> {
        Some(&self.manager)
    }

    fn economy_mut(&mut self) -> Option<&mut EconomyManager> {
        Some(&mut self.manager)
    }

    fn disk_used(&self) -> u64 {
        self.manager.cache().disk_used()
    }

    fn disk_byte_seconds(&self) -> f64 {
        self.manager.cache().disk_byte_seconds()
    }

    fn active_extra_nodes(&self, now: SimTime) -> u32 {
        self.manager.cache().available_extra_nodes(now)
    }

    fn advance(&mut self, now: SimTime) {
        // Route through the cache's occupancy accrual; the manager's
        // process_query advances on arrivals, this covers the run tail.
        self.manager.advance_to(now);
    }

    fn rebase_occupancy(&mut self, now: SimTime) {
        self.manager.rebase_occupancy(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalog::tpch::{tpch_schema, ScaleFactor};
    use planner::{generate_candidates, CostParams, Estimator};
    use pricing::PriceCatalog;
    use simcore::NetworkModel;
    use std::sync::Arc;
    use workload::{paper_templates, WorkloadConfig, WorkloadGenerator};

    fn fixture() -> (
        Arc<catalog::Schema>,
        Vec<cache::IndexDef>,
        Estimator,
        WorkloadGenerator,
    ) {
        let schema = Arc::new(tpch_schema(ScaleFactor(1.0)));
        let templates = paper_templates(&schema);
        let candidates = generate_candidates(&schema, &templates, 65);
        let estimator = Estimator::new(
            CostParams::default(),
            PriceCatalog::ec2_2009(),
            NetworkModel::paper_sdss(),
        );
        let gen = WorkloadGenerator::new(Arc::clone(&schema), WorkloadConfig::default(), 3);
        (schema, candidates, estimator, gen)
    }

    #[test]
    fn names_match_the_paper() {
        let base = EconConfig::default();
        assert_eq!(EconPolicy::econ_col(base.clone()).name(), "econ-col");
        assert_eq!(EconPolicy::econ_cheap(base.clone()).name(), "econ-cheap");
        assert_eq!(EconPolicy::econ_fast(base.clone()).name(), "econ-fast");
        assert_eq!(EconPolicy::altruistic(base).name(), "econ-altruistic");
    }

    #[test]
    fn econ_col_forbids_indexes_and_nodes() {
        let p = EconPolicy::econ_col(EconConfig::default());
        assert!(!p.manager().config().allow_indexes);
        assert!(!p.manager().config().allow_extra_nodes);
    }

    #[test]
    fn outcome_fields_are_consistent() {
        let (schema, candidates, estimator, mut gen) = fixture();
        let cand_index = planner::CandidateIndex::build(&schema, &candidates);
        let ctx = PlannerContext {
            schema: &schema,
            candidates: &candidates,
            cand_index: &cand_index,
            estimator: &estimator,
        };
        let mut p = EconPolicy::econ_cheap(EconConfig::default());
        for i in 0..50 {
            let q = gen.next_query();
            let o = p.process_query(&ctx, &q, SimTime::from_secs((i + 1) as f64));
            assert!(!o.payment.is_negative());
            assert!(!o.profit.is_negative());
            assert!(o.payment >= o.profit);
        }
        assert!(p.manager().account().balances_exactly());
    }

    #[test]
    fn disk_accounting_reaches_the_trait() {
        let (schema, candidates, estimator, mut gen) = fixture();
        let cand_index = planner::CandidateIndex::build(&schema, &candidates);
        let ctx = PlannerContext {
            schema: &schema,
            candidates: &candidates,
            cand_index: &cand_index,
            estimator: &estimator,
        };
        let mut p = EconPolicy::econ_cheap(EconConfig::default());
        for i in 0..10 {
            let q = gen.next_query();
            let _ = p.process_query(&ctx, &q, SimTime::from_secs((i + 1) as f64));
        }
        p.advance(SimTime::from_secs(1000.0));
        // Whether or not anything was built, the integral must be
        // internally consistent with usage.
        if p.disk_used() == 0 {
            assert_eq!(p.disk_byte_seconds(), p.disk_byte_seconds());
        } else {
            assert!(p.disk_byte_seconds() > 0.0);
        }
    }
}
