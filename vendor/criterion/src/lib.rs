//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the macro and method surface the workspace's benches use —
//! `bench_function`, benchmark groups, `iter` / `iter_batched`,
//! `black_box`, `criterion_group!` / `criterion_main!` — with a simple
//! best-of-batches wall-clock measurement printed per bench. No
//! statistics, baselines or plots.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not interpreted).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (one setup per measured call).
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Target wall-clock spent measuring each bench.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Per-bench measurement driver.
pub struct Bencher {
    best_ns_per_iter: f64,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            best_ns_per_iter: f64::INFINITY,
        }
    }

    /// Times `routine` in growing batches until the budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let mut batch = 1u64;
        while start.elapsed() < MEASURE_BUDGET {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            if ns < self.best_ns_per_iter {
                self.best_ns_per_iter = ns;
            }
            batch = batch.saturating_mul(2);
        }
    }

    /// Times `routine` over inputs produced by `setup` (setup excluded).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let start = Instant::now();
        let mut measured = 0u32;
        while measured == 0 || (start.elapsed() < MEASURE_BUDGET && measured < 10) {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let ns = t0.elapsed().as_nanos() as f64;
            if ns < self.best_ns_per_iter {
                self.best_ns_per_iter = ns;
            }
            measured += 1;
        }
    }
}

/// Bench registry and runner.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Registers and immediately runs one bench.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&name.into(), b.best_ns_per_iter);
        self
    }

    /// Opens a named group of benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }
}

/// A named group of benches.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Registers and immediately runs one bench within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name.into()),
            b.best_ns_per_iter,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn report(name: &str, ns: f64) {
    if ns.is_finite() {
        if ns >= 1e6 {
            println!("{name:<48} {:>12.3} ms/iter", ns / 1e6);
        } else {
            println!("{name:<48} {ns:>12.0} ns/iter");
        }
    } else {
        println!("{name:<48}        (not measured)");
    }
}

/// Declares a bench group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::LargeInput)
        });
        g.finish();
    }
}
