//! Derive macros for the vendored `serde` facade.
//!
//! Parses the item with the raw `proc_macro` API (no `syn`/`quote` — the
//! build is offline) and emits impls of the facade's `Serialize` /
//! `Deserialize` traits. Supported shapes are exactly what this workspace
//! derives on: non-generic structs with named fields, tuple structs, unit
//! structs, and enums whose variants are unit, tuple or struct-like.
//! Enums use serde's externally-tagged representation.
//!
//! The one field attribute supported is `#[serde(default)]` /
//! `#[serde(default = "path")]` on named fields: an absent key
//! deserializes to `Default::default()` (or `path()`) instead of
//! erroring, which is how evolving record formats (bench JSON, trace
//! deltas) stay readable across revisions. Serialization always writes
//! every field.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field and its absent-key behavior: `None` = required,
/// `Some(None)` = `#[serde(default)]`, `Some(Some(path))` =
/// `#[serde(default = "path")]`.
struct Field {
    name: String,
    default: Option<Option<String>>,
}

/// Parsed shape of a struct body or an enum variant's payload.
enum Shape {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

enum Kind {
    Struct(Shape),
    Enum(Vec<(String, Shape)>),
}

struct Item {
    name: String,
    kind: Kind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic type `{name}`");
        }
    }
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_struct_body(&tokens, &mut i)),
        "enum" => Kind::Enum(parse_enum_body(&tokens, &mut i, &name)),
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    };
    Item { name, kind }
}

/// Skips outer attributes (`#[...]`, including doc comments) and
/// visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_struct_body(tokens: &[TokenTree], i: &mut usize) -> Shape {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => panic!("unsupported struct body: {other:?}"),
    }
}

/// Fields of a `{ a: T, b: U }` body, with any `#[serde(default...)]`
/// attribute captured. Commas inside `<...>` generic arguments are not
/// separators, so angle-bracket depth is tracked.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes and visibility before the field name; `#[serde(...)]`
        // is inspected, everything else (doc comments, `pub`) skipped.
        let mut default: Option<Option<String>> = None;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if let Some(d) = parse_serde_default(g) {
                            default = Some(d);
                        }
                    }
                    i += 2; // '#' + bracket group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1; // pub(crate) etc.
                        }
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other}"),
        }
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Reads a `[serde(...)]` attribute group: `Some(None)` for
/// `#[serde(default)]`, `Some(Some(path))` for
/// `#[serde(default = "path")]`, `None` for any other attribute. Other
/// serde options are rejected loudly — silently ignoring one would
/// change a format without anyone noticing.
fn parse_serde_default(group: &proc_macro::Group) -> Option<Option<String>> {
    let outer: Vec<TokenTree> = group.stream().into_iter().collect();
    match outer.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match outer.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        other => panic!("malformed serde attribute: {other:?}"),
    };
    let tokens: Vec<TokenTree> = inner.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        other => panic!("vendored serde_derive only supports serde(default...), found {other:?}"),
    }
    match tokens.get(1) {
        None => Some(None),
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => match tokens.get(2) {
            Some(TokenTree::Literal(lit)) => {
                let s = lit.to_string();
                let path = s
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .unwrap_or_else(|| panic!("serde(default = ...) expects a string literal"));
                Some(Some(path.to_string()))
            }
            other => panic!("serde(default = ...) expects a string literal, found {other:?}"),
        },
        other => panic!("unsupported serde(default...) form: {other:?}"),
    }
}

/// Number of fields of a `(T, U, ...)` body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut angle_depth = 0i32;
    let mut pending = false; // tokens seen since the last separator
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                pending = false;
            }
            _ => pending = true,
        }
    }
    if pending {
        count += 1;
    }
    count
}

fn parse_enum_body(tokens: &[TokenTree], i: &mut usize, name: &str) -> Vec<(String, Shape)> {
    let group = match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("expected enum body for `{name}`, found {other:?}"),
    };
    let body: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut j = 0;
    while j < body.len() {
        skip_attrs_and_vis(&body, &mut j);
        if j >= body.len() {
            break;
        }
        let vname = match &body[j] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name in `{name}`, found {other}"),
        };
        j += 1;
        let shape = match body.get(j) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                j += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                j += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = body.get(j) {
            if p.as_char() == ',' {
                j += 1;
            }
        }
        variants.push((vname, shape));
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Shape::Named(fields)) => ser_named_body(fields, "self.", ""),
        Kind::Struct(Shape::Tuple(1)) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::serialize(&self.{k})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, shape)| match shape {
                    Shape::Unit => {
                        format!("{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),")
                    }
                    Shape::Tuple(1) => format!(
                        "{name}::{vname}(__x0) => ::serde::__tag(\"{vname}\", \
                         ::serde::Serialize::serialize(__x0)),"
                    ),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__x{k}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::serialize(__x{k})"))
                            .collect();
                        format!(
                            "{name}::{vname}({}) => ::serde::__tag(\"{vname}\", \
                             ::serde::Value::Seq(vec![{}])),",
                            binds.join(", "),
                            elems.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let map = ser_named_body(fields, "", "");
                        format!(
                            "{name}::{vname} {{ {binds} }} => \
                             ::serde::__tag(\"{vname}\", {map}),"
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn serialize(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

/// `Value::Map` literal for named fields. `prefix` is `self.` for struct
/// fields or empty for match-bound variant fields; binding references are
/// already `&T` in the variant case, so take a reference only when needed.
fn ser_named_body(fields: &[Field], prefix: &str, _suffix: &str) -> String {
    let pushes: Vec<String> = fields
        .iter()
        .map(|f| {
            let f = &f.name;
            let access = if prefix.is_empty() {
                f.clone() // match binding: already a reference
            } else {
                format!("&{prefix}{f}")
            };
            format!("__m.push((\"{f}\".to_string(), ::serde::Serialize::serialize({access})));")
        })
        .collect();
    format!(
        "{{ let mut __m: Vec<(String, ::serde::Value)> = Vec::new(); {} \
         ::serde::Value::Map(__m) }}",
        pushes.join(" ")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => format!("Ok({name})"),
        Kind::Struct(Shape::Named(fields)) => {
            let inits: Vec<String> = fields.iter().map(|f| de_named_field(f, name)).collect();
            format!(
                "let __m = ::serde::__expect_map(__v, \"{name}\")?; \
                 Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Kind::Struct(Shape::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize(&__s[{k}])?"))
                .collect();
            format!(
                "let __s = ::serde::__expect_seq(__v, {n}, \"{name}\")?; \
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, shape)| match shape {
                    Shape::Unit => format!("\"{vname}\" => Ok({name}::{vname}),"),
                    Shape::Tuple(1) => format!(
                        "\"{vname}\" => {{ let __p = ::serde::__payload(__payload, \
                         \"{name}::{vname}\")?; \
                         Ok({name}::{vname}(::serde::Deserialize::deserialize(__p)?)) }}"
                    ),
                    Shape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::deserialize(&__s[{k}])?"))
                            .collect();
                        format!(
                            "\"{vname}\" => {{ let __p = ::serde::__payload(__payload, \
                             \"{name}::{vname}\")?; \
                             let __s = ::serde::__expect_seq(__p, {n}, \"{name}::{vname}\")?; \
                             Ok({name}::{vname}({})) }}",
                            inits.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let ty = format!("{name}::{vname}");
                        let inits: Vec<String> =
                            fields.iter().map(|f| de_named_field(f, &ty)).collect();
                        format!(
                            "\"{vname}\" => {{ let __p = ::serde::__payload(__payload, \
                             \"{name}::{vname}\")?; \
                             let __m = ::serde::__expect_map(__p, \"{name}::{vname}\")?; \
                             Ok({name}::{vname} {{ {} }}) }}",
                            inits.join(" ")
                        )
                    }
                })
                .collect();
            format!(
                "let (__name, __payload) = ::serde::__variant(__v)?; \
                 match __name {{ {} __other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{}}` for {name}\", __other))) }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn deserialize(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}

/// One named field's deserialization initializer, honoring its
/// absent-key behavior. A `default = "path"` path resolves in the scope
/// of the deriving item, same as real serde.
fn de_named_field(f: &Field, ty: &str) -> String {
    let name = &f.name;
    match &f.default {
        None => format!("{name}: ::serde::__map_field(__m, \"{name}\", \"{ty}\")?,"),
        Some(None) => format!(
            "{name}: ::serde::__map_field_or(__m, \"{name}\", \"{ty}\", \
             ::std::default::Default::default)?,"
        ),
        Some(Some(path)) => {
            format!("{name}: ::serde::__map_field_or(__m, \"{name}\", \"{ty}\", {path})?,")
        }
    }
}
