//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Provides the `proptest!` macro plus the strategy combinators this
//! workspace's property tests use: numeric ranges, tuples,
//! `prop::collection::vec` and `prop::bool::ANY`. Each property runs
//! [`CASES`] deterministic cases (seeded from the test name); failures
//! panic with the ordinary assert message. No shrinking is performed.

use std::ops::Range;

/// Number of sampled cases per property.
pub const CASES: u32 = 64;

/// Deterministic RNG for strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name so every property is reproducible.
    #[must_use]
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and built-in implementations.

    use super::TestRng;
    use std::ops::Range;

    /// A generator of test values.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Wide multiply keeps i128 spans uniform enough for tests.
                    let off = (u128::from(rng.next_u64()) * span) >> 64;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.sample(rng),
                self.1.sample(rng),
                self.2.sample(rng),
                self.3.sample(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
        type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.sample(rng),
                self.1.sample(rng),
                self.2.sample(rng),
                self.3.sample(rng),
                self.4.sample(rng),
            )
        }
    }
}

/// Strategy producing `Vec`s of an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: strategy::Strategy> strategy::Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.next_below(span.max(1)) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy producing uniformly random booleans (`prop::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

impl strategy::Strategy for BoolAny {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).

    pub mod collection {
        //! Collection strategies.
        use crate::VecStrategy;
        use std::ops::Range;

        /// `Vec` strategy with element strategy and length range.
        pub fn vec<S: crate::strategy::Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }

    pub mod bool {
        //! Boolean strategies.

        /// Uniformly random booleans.
        pub const ANY: crate::BoolAny = crate::BoolAny;
    }
}

/// Defines property tests: each `fn` runs [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    //! Everything a property-test module imports.
    pub use crate::strategy::Strategy;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            x in 3u64..17,
            y in -2.5f64..2.5,
            flag in prop::bool::ANY,
            xs in prop::collection::vec(0u32..5, 1..9)
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            let _seen: bool = flag;
            prop_assert!(!xs.is_empty() && xs.len() < 9);
            prop_assert!(xs.iter().all(|&v| v < 5));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
