//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Emits and parses JSON over the vendored `serde::Value` data model.
//! Floats use Rust's shortest-round-trip `Display`, so a serialize →
//! parse → serialize cycle is byte-identical (the workload-trace format
//! relies on this). One deliberate deviation: non-finite floats serialize
//! as bare `inf` / `-inf` / `NaN` tokens, which this parser accepts.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Serializes a value to a compact JSON string.
///
/// # Errors
/// Infallible for well-formed data; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.serialize(), &mut out);
    Ok(out)
}

/// Parses a JSON string into any deserializable type.
///
/// # Errors
/// Returns a positioned message for malformed JSON or shape mismatches.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize(&v)?)
}

// -------------------------------------------------------------- emission

fn emit(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else if f.is_nan() {
                out.push_str("NaN");
            } else if *f > 0.0 {
                out.push_str("inf");
            } else {
                out.push_str("-inf");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_string(k, out);
                out.push(':');
                emit(val, out);
            }
            out.push('}');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.literal("NaN") => Ok(Value::Float(f64::NAN)),
            Some(b'i') if self.literal("inf") => Ok(Value::Float(f64::INFINITY)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-inf") => {
                self.pos += 4;
                Ok(Value::Float(f64::NEG_INFINITY))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.literal("\\u") {
                                    return Err(self.err("expected low surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            self.pos -= 1; // compensate the +1 below
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x80 => {
                    // Consume a whole run of plain ASCII bytes at once; a
                    // per-character slice-and-validate of the remaining
                    // input would make parsing quadratic in document size.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b >= 0x80 {
                            break;
                        }
                        self.pos += 1;
                    }
                    // All bytes in the run are < 0x80, so it is valid UTF-8.
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 character: validate at
                    // most the next 4 bytes, never the whole rest.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let rest = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(rest) {
                        Ok(s) => s.chars().next(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&rest[..e.valid_up_to()])
                                .ok()
                                .and_then(|s| s.chars().next())
                        }
                        Err(_) => None,
                    };
                    let c = c.ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            match text.parse::<i128>() {
                Ok(i) => Ok(Value::Int(i)),
                // Magnitude beyond i128: fall back to float.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
    }

    #[test]
    fn float_display_is_shortest_round_trip() {
        let x = 0.1f64 + 0.2;
        let s = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap(), x);
        // Second serialization is byte-identical.
        assert_eq!(to_string(&from_str::<f64>(&s).unwrap()).unwrap(), s);
    }

    #[test]
    fn non_finite_floats_round_trip() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "inf");
        assert_eq!(from_str::<f64>("inf").unwrap(), f64::INFINITY);
        assert_eq!(from_str::<f64>("-inf").unwrap(), f64::NEG_INFINITY);
        assert!(from_str::<f64>("NaN").unwrap().is_nan());
    }

    #[test]
    fn errors_carry_positions() {
        let e = from_str::<u64>("{nope").unwrap_err().to_string();
        assert!(e.contains("byte"), "{e}");
        assert!(from_str::<u64>("42 junk").is_err());
    }

    #[test]
    fn i128_precision_preserved() {
        let big: i128 = 170_141_183_460_469_231_731_687_303_715_884_105_727;
        let s = to_string(&big).unwrap();
        assert_eq!(from_str::<i128>(&s).unwrap(), big);
    }
}
