//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The real serde serializes through visitor traits; this facade goes
//! through an owned [`Value`] tree, which is all the workspace needs: the
//! only serializer in use is the vendored `serde_json`, and the types
//! involved are small configuration / result structs. The public import
//! surface (`serde::{Serialize, Deserialize}`, derive macros of the same
//! names) matches the real crate so sources compile unchanged.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;
use std::sync::Arc;

/// A serialized value: the data model shared by [`Serialize`] and
/// [`Deserialize`]. Maps preserve insertion order so that derived structs
/// serialize their fields in declaration order (deterministic output).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any integer (i128 covers every integer type in the workspace).
    Int(i128),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence (Vec, tuples, tuple structs).
    Seq(Vec<Value>),
    /// Key-value map (structs, struct variants, maps).
    Map(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    /// Serializes `self` into the value tree.
    fn serialize(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes from the value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// `Value` round-trips as itself, mirroring the real serde_json's
// `Value: Serialize + Deserialize` — callers can parse arbitrary JSON
// into the tree and navigate it dynamically.
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Value {
    /// Map entry lookup: `Some(&value)` when `self` is a map containing
    /// `key`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if `self` is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean, if `self` is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string slice, if `self` is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The sequence elements, if `self` is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

// ------------------------------------------------------- derive support

/// Externally-tagged enum payload: `{"Variant": payload}`.
#[doc(hidden)]
pub fn __tag(name: &str, payload: Value) -> Value {
    Value::Map(vec![(name.to_string(), payload)])
}

#[doc(hidden)]
pub fn __expect_map<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
    match v {
        Value::Map(m) => Ok(m),
        other => Err(Error::custom(format!(
            "{ty}: expected map, found {other:?}"
        ))),
    }
}

#[doc(hidden)]
pub fn __expect_seq<'a>(v: &'a Value, len: usize, ty: &str) -> Result<&'a [Value], Error> {
    match v {
        Value::Seq(s) if s.len() == len => Ok(s),
        Value::Seq(s) => Err(Error::custom(format!(
            "{ty}: expected sequence of {len}, found {}",
            s.len()
        ))),
        other => Err(Error::custom(format!(
            "{ty}: expected sequence, found {other:?}"
        ))),
    }
}

#[doc(hidden)]
pub fn __map_field<T: Deserialize>(
    map: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::deserialize(v).map_err(|e| Error::custom(format!("{ty}.{key}: {e}"))),
        None => Err(Error::custom(format!("{ty}: missing field `{key}`"))),
    }
}

/// [`__map_field`] with a fallback for absent keys — the facade's
/// `#[serde(default)]` / `#[serde(default = "path")]`. A key that *is*
/// present must still deserialize.
#[doc(hidden)]
pub fn __map_field_or<T: Deserialize>(
    map: &[(String, Value)],
    key: &str,
    ty: &str,
    default: impl FnOnce() -> T,
) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::deserialize(v).map_err(|e| Error::custom(format!("{ty}.{key}: {e}"))),
        None => Ok(default()),
    }
}

/// Splits an externally-tagged enum value into `(variant name, payload)`.
#[doc(hidden)]
pub fn __variant(v: &Value) -> Result<(&str, Option<&Value>), Error> {
    match v {
        Value::Str(s) => Ok((s.as_str(), None)),
        Value::Map(m) if m.len() == 1 => Ok((m[0].0.as_str(), Some(&m[0].1))),
        other => Err(Error::custom(format!(
            "expected enum value, found {other:?}"
        ))),
    }
}

#[doc(hidden)]
pub fn __payload<'a>(p: Option<&'a Value>, variant: &str) -> Result<&'a Value, Error> {
    p.ok_or_else(|| Error::custom(format!("{variant}: missing variant payload")))
}

// ------------------------------------------------------------ primitives

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::custom(format!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    other => Err(Error::custom(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::custom(format!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!("expected char, found {other:?}"))),
        }
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(s) => s.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let s = __expect_seq(value, LEN, "tuple")?;
                Ok(($($t::deserialize(&s[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K, V> Serialize for std::collections::HashMap<K, V>
where
    K: Serialize + Ord + std::hash::Hash,
    V: Serialize,
{
    fn serialize(&self) -> Value {
        // Sorted by key so hash-map iteration order never leaks into output.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Seq(
            entries
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
{
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(entries) => entries
                .iter()
                .map(|e| {
                    let pair = __expect_seq(e, 2, "map entry")?;
                    Ok((K::deserialize(&pair[0])?, V::deserialize(&pair[1])?))
                })
                .collect(),
            other => Err(Error::custom(format!(
                "expected map entries, found {other:?}"
            ))),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(entries) => entries
                .iter()
                .map(|e| {
                    let pair = __expect_seq(e, 2, "map entry")?;
                    Ok((K::deserialize(&pair[0])?, V::deserialize(&pair[1])?))
                })
                .collect(),
            other => Err(Error::custom(format!(
                "expected map entries, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i128::deserialize(&(-7i128).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);
        let t = (1.5f64, 2.5f64);
        assert_eq!(<(f64, f64)>::deserialize(&t.serialize()).unwrap(), t);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::deserialize(&o.serialize()).unwrap(), None);
    }

    #[test]
    fn out_of_range_integer_rejected() {
        assert!(u8::deserialize(&Value::Int(300)).is_err());
    }
}
