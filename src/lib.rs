//! # cloudcache — an economic model for self-tuned cloud caching
//!
//! Umbrella crate re-exporting the full reproduction of
//! *"An Economic Model for Self-Tuned Cloud Caching"*
//! (Dash, Kantere, Ailamaki — ICDE 2009).
//!
//! Start with [`simulator::run_simulation`] or the `quickstart` example.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use cache;
pub use catalog;
pub use econ;
pub use metrics;
pub use planner;
pub use policies;
pub use pricing;
pub use simcore;
pub use simulator;
pub use workload;
