//! # cloudcache — an economic model for self-tuned cloud caching
//!
//! Umbrella crate re-exporting the full reproduction of
//! *"An Economic Model for Self-Tuned Cloud Caching"*
//! (Dash, Kantere, Ailamaki — ICDE 2009), plus the layers grown on top
//! of it.
//!
//! ## Layers
//!
//! The paper's single-cloud economy, bottom-up:
//!
//! * [`simcore`] — discrete-event kernel: virtual time, deterministic
//!   RNG, samplers, event queue, arrival processes, the WAN model.
//! * [`pricing`] — exact fixed-point [`pricing::Money`] and the resource
//!   price catalogs.
//! * [`catalog`] / [`workload`] — the TPC-H/SDSS schema and the
//!   seven-template synthetic workload (with JSONL trace record/replay).
//! * [`cache`] / [`planner`] — cache state and occupancy integrals; plan
//!   enumeration, skyline filtering and the full cost model (eqs. 8–15).
//! * [`econ`] — the economy itself: budgets `B_Q(t)`, the case analysis,
//!   regret, the investment rule (eq. 3) and amortisation (eq. 7).
//! * [`policies`] / [`simulator`] — the paper's four schemes behind one
//!   [`policies::CachePolicy`] trait, and the coordinator loop producing
//!   Figures 4 and 5 ([`simulator::run_simulation`]).
//!
//! ## The fleet layer
//!
//! [`fleet`] scales the single cloud out to a **marketplace**: a
//! population of tenants ([`fleet::TenantSpec`]) submits superposed query
//! streams (binary-heap merged into one time-ordered stream), several
//! self-tuned cache nodes serve them, and a [`fleet::Router`] decides who
//! wins each query — round-robin, least-outstanding-load, or
//! *cheapest-quote*, where every node bids its price `B_Q(t)`
//! ([`policies::CachePolicy::quote`]) and the lowest bid wins. The
//! sharded executor partitions tenants into cells across worker threads
//! with a shard-count-invariant merge, so parallel runs are bit-identical
//! to sequential ones. See [`fleet::FleetConfig`] and
//! [`fleet::run_fleet`], or the `fleet_market` example.
//!
//! [`telemetry`] is the fleet's flight recorder: a typed
//! [`telemetry::TraceEvent`] stream (quote rounds, settlements, node
//! lifecycle) behind a zero-cost-when-disabled [`telemetry::TraceSink`],
//! a bit-identically mergeable [`telemetry::MetricsRegistry`], and
//! replay rollups ([`telemetry::explain`]) answering why a node retired
//! and where the dollars went. Recording never perturbs a run — a traced
//! run is bit-identical to an untraced one.
//!
//! Start with [`simulator::run_simulation`], the `quickstart` example, or
//! `fleet_market` for the marketplace.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use cache;
pub use catalog;
pub use econ;
pub use fleet;
pub use metrics;
pub use planner;
pub use policies;
pub use pricing;
pub use simcore;
pub use simulator;
pub use telemetry;
pub use workload;
